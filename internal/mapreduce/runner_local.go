package mapreduce

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"ngramstats/internal/extsort"
)

// LocalRunner executes a plan's tasks as goroutines inside this
// process — the original in-process engine, now behind the Runner
// seam. It is the default backend.
type LocalRunner struct{}

func init() {
	RegisterRunner("local", func(cfg RunnerConfig) (Runner, error) {
		if cfg.Rest != "" {
			return nil, fmt.Errorf("mapreduce: runner %q: the local backend takes no address", cfg.Address)
		}
		return LocalRunner{}, nil
	})
}

// String renders the resolved backend for -stats attribution.
func (LocalRunner) String() string { return "local" }

// Run implements Runner.
func (LocalRunner) Run(ctx context.Context, plan *Plan, counters *Counters, progress Progress) (Dataset, error) {
	j := plan.job
	sink, err := plan.Sink(plan.NumReducers)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: sink: %w", plan.Name, err)
	}
	if plan.MapOnly {
		err = runMapOnly(ctx, j, plan.Splits, sink, counters, progress)
	} else {
		err = runMapReduce(ctx, j, plan.Splits, sink, plan.shuffleIO, counters, progress)
	}
	if err != nil {
		abortSink(sink)
		return nil, err
	}
	out, err := sink.Finish()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: finish sink: %w", plan.Name, err)
	}
	return out, nil
}

// discardRuns releases every run in a per-partition run set.
func discardRuns(runSets ...[]*extsort.Run) {
	for _, rs := range runSets {
		for _, r := range rs {
			r.Discard()
		}
	}
}

func runMapReduce(ctx context.Context, j *Job, splits []Split, sink Sink, shuffleIO *extsort.IOStats, counters *Counters, progress Progress) error {
	// Lock-free run hand-off: every map task owns its splits[taskID]
	// slot exclusively while running, so no synchronization is needed on
	// the write; the map-phase barrier in runTasks publishes all slots
	// to the reduce tasks.
	runsByTask := make([][][]*extsort.Run, len(splits))
	discardByTask := func() {
		for _, taskRuns := range runsByTask {
			discardRuns(taskRuns...)
		}
	}

	// sealKeep bounds the in-memory bytes one task may hand off in
	// sealed runs, keeping the job's total resident hand-off memory
	// near MapSlots×ShuffleMemory even when many more tasks than slots
	// finish before the reduce phase drains them.
	sealKeep := j.ShuffleMemory
	if len(splits) > j.MapSlots {
		sealKeep = j.ShuffleMemory * j.MapSlots / len(splits)
	}

	// ---- Map phase: each task sorts and spills its own output. ----
	mapStart := time.Now()
	progress.PhaseStart(j.Name, "map")
	if err := runTasks(ctx, len(splits), j.MapSlots, func(ctx context.Context, taskID int) error {
		runs, err := runMapTask(ctx, j, taskID, splits[taskID], sealKeep, shuffleIO, counters)
		if err != nil {
			return err
		}
		runsByTask[taskID] = runs
		progress.TaskDone(j.Name, "map")
		return nil
	}); err != nil {
		discardByTask()
		return fmt.Errorf("mapreduce: job %q: map phase: %w", j.Name, err)
	}
	counters.Add(CounterMapPhaseMillis, time.Since(mapStart).Milliseconds())
	if n := counters.Get(CounterMalformedKeys); n > 0 {
		discardByTask()
		return fmt.Errorf("mapreduce: job %q: partitioner rejected %d malformed intermediate keys", j.Name, n)
	}

	// ---- Shuffle: gather every map task's sealed runs per partition. ----
	perPart := make([][]*extsort.Run, j.NumReducers)
	for _, taskRuns := range runsByTask {
		for p, rs := range taskRuns {
			perPart[p] = append(perPart[p], rs...)
		}
	}
	runsByTask = nil

	// ---- Reduce phase: each task multi-way merges its partition. ----
	reduceStart := time.Now()
	progress.PhaseStart(j.Name, "reduce")
	if err := runTasks(ctx, j.NumReducers, j.ReduceSlots, func(ctx context.Context, p int) error {
		runs := perPart[p]
		perPart[p] = nil // ownership passes to the reduce task
		if err := runReduceTask(ctx, j, p, runs, sink, counters); err != nil {
			return err
		}
		progress.TaskDone(j.Name, "reduce")
		return nil
	}); err != nil {
		discardRuns(perPart...)
		return fmt.Errorf("mapreduce: job %q: reduce phase: %w", j.Name, err)
	}
	counters.Add(CounterReducePhaseMillis, time.Since(reduceStart).Milliseconds())
	counters.Add(CounterShuffleBytesWritten, shuffleIO.BytesWritten())
	counters.Add(CounterShuffleBytesRead, shuffleIO.BytesRead())
	return nil
}

// runMapTask executes one map task: it runs the mapper over its split,
// partitions and locally sorts the output in task-private sorters
// (routing it through the combiner first when configured), then seals
// each partition's sorter into sorted runs for the reduce-side merge.
// The per-record emit path acquires no locks: counters are resolved to
// atomic cells up front and all sorters are owned by this task alone.
//
// A negative sealKeep forces every partition sorter to spill before
// sealing, guaranteeing all handed-off runs are on-disk files — the
// process runner's workers rely on this to pass runs across process
// boundaries by path.
func runMapTask(ctx context.Context, j *Job, taskID int, split Split, sealKeep int, shuffleIO *extsort.IOStats, counters *Counters) ([][]*extsort.Run, error) {
	mapper := j.NewMapper()
	tc := &TaskContext{
		JobName: j.Name, TaskID: taskID, Phase: "map", Partition: -1,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := mapper.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			return nil, fmt.Errorf("map task %d setup: %w", taskID, err)
		}
	}

	mapOutRecs := counters.Counter(CounterMapOutputRecords)
	mapOutBytes := counters.Counter(CounterMapOutputBytes)
	shuffleBytes := counters.Counter(CounterReduceShuffleBytes)
	malformedKeys := counters.Counter(CounterMalformedKeys)
	spilled := counters.Counter(CounterSpilledRecords)
	onSpill := func(n int) { spilled.Add(int64(n)) }

	// Task-private per-partition output sorters, created on first use so
	// tasks touching few partitions stay cheap. Each sorter's own budget
	// is the full task budget; the shared accounting below usually
	// triggers a graceful spill first.
	out := make([]*extsort.Sorter, j.NumReducers)
	discardOut := func() {
		for _, s := range out {
			if s != nil {
				s.Discard()
			}
		}
	}

	// Shared task-level memory accounting: when the buffered bytes
	// across all partition sorters exceed ShuffleMemory, spill the
	// largest buffer to a sorted on-disk run (graceful degradation, like
	// Hadoop's io.sort.mb buffer flush).
	var buffered int
	addOut := func(p int, key, value []byte) error {
		s := out[p]
		if s == nil {
			s = extsort.NewSorter(extsort.Options{
				MemoryBudget: j.ShuffleMemory,
				TempDir:      j.TempDir,
				Compare:      j.Compare,
				OnSpill:      onSpill,
				Codec:        j.ShuffleCodec,
				Stats:        shuffleIO,
			})
			out[p] = s
		}
		before := s.MemoryInUse()
		if err := s.Add(key, value); err != nil {
			return err
		}
		buffered += s.MemoryInUse() - before
		if buffered < j.ShuffleMemory {
			return nil
		}
		// Spill largest-first until under half the budget. The
		// hysteresis matters: evicting a single buffer per trigger
		// would pin `buffered` at the budget when many partitions hold
		// uniformly small buffers and degenerate into a per-record
		// spill storm of tiny runs.
		for buffered >= j.ShuffleMemory/2 {
			big := -1
			for q, sq := range out {
				if sq != nil && (big < 0 || sq.MemoryInUse() > out[big].MemoryInUse()) {
					big = q
				}
			}
			if big < 0 || out[big].MemoryInUse() == 0 {
				break
			}
			buffered -= out[big].MemoryInUse()
			if err := out[big].Spill(); err != nil {
				return err
			}
		}
		return nil
	}

	var local []*extsort.Sorter // per-partition combiner buffers
	combine := j.NewCombiner != nil
	if combine {
		local = make([]*extsort.Sorter, j.NumReducers)
		per := j.CombineMemory / j.NumReducers
		if per < 256<<10 {
			per = 256 << 10
		}
		for p := range local {
			local[p] = extsort.NewSorter(extsort.Options{
				MemoryBudget: per,
				TempDir:      j.TempDir,
				Compare:      j.Compare,
				OnSpill:      onSpill,
			})
		}
	}
	discardLocal := func() {
		for _, s := range local {
			if s != nil {
				s.Discard()
			}
		}
	}
	discardAll := func() {
		discardLocal()
		discardOut()
	}

	emit := Emit(func(key, value []byte) error {
		mapOutRecs.Add(1)
		mapOutBytes.Add(int64(len(key) + len(value)))
		p := j.Partition(key, j.NumReducers)
		if p == MalformedKeyPartition {
			// Count every unparseable key and keep the task running so
			// the post-map-phase check can report the full tally; route
			// the record to partition 0 in the meantime (the job fails
			// before any reducer sees it).
			malformedKeys.Add(1)
			p = 0
		}
		if p < 0 || p >= j.NumReducers {
			return fmt.Errorf("partitioner returned %d for %d reducers", p, j.NumReducers)
		}
		if combine {
			return local[p].Add(key, value)
		}
		shuffleBytes.Add(int64(len(key) + len(value)))
		return addOut(p, key, value)
	})

	var n int64
	err := split.Records(func(key, value []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		n++
		return mapper.Map(key, value, emit)
	})
	counters.Add(CounterMapInputRecords, n)
	if err != nil {
		discardAll()
		return nil, fmt.Errorf("map task %d: %w", taskID, err)
	}
	if c, ok := mapper.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			discardAll()
			return nil, fmt.Errorf("map task %d cleanup: %w", taskID, err)
		}
	}

	if combine {
		// Run the combiner over each partition's sorted local output and
		// feed the combined records into the task's output sorters.
		for p, sorter := range local {
			local[p] = nil
			add := func(key, value []byte) error { return addOut(p, key, value) }
			if err := combinePartition(ctx, j, taskID, p, sorter, add, counters); err != nil {
				discardAll()
				return nil, fmt.Errorf("map task %d combine partition %d: %w", taskID, p, err)
			}
		}
	}

	// Seal each partition's sorter into its sorted runs and hand them
	// off; from here the runs are owned by the caller (and ultimately by
	// the reduce-side merge). Sealed in-memory runs stay resident until
	// their reduce task consumes them, so when more map tasks exist than
	// slots the remainders of finished tasks would accumulate past
	// MapSlots×ShuffleMemory — in that case spill them to disk first
	// (Hadoop's always-on-disk final map output, applied only when the
	// bound is actually at risk).
	sealStart := time.Now()
	if buffered > sealKeep {
		for _, s := range out {
			if s != nil && s.MemoryInUse() > 0 {
				if err := s.Spill(); err != nil {
					discardAll()
					return nil, fmt.Errorf("map task %d final spill: %w", taskID, err)
				}
			}
		}
	}
	taskRuns := make([][]*extsort.Run, j.NumReducers)
	var sealedRuns int64
	for p, s := range out {
		if s == nil {
			continue
		}
		out[p] = nil
		runs, err := s.Seal()
		if err != nil {
			discardRuns(taskRuns...)
			discardAll()
			return nil, fmt.Errorf("map task %d seal partition %d: %w", taskID, p, err)
		}
		taskRuns[p] = runs
		sealedRuns += int64(len(runs))
	}
	counters.Add(CounterShuffleRuns, sealedRuns)
	counters.Add(CounterShuffleMicros, time.Since(sealStart).Microseconds())
	return taskRuns, nil
}

// combinePartition sorts one partition's local map output, runs the
// combiner over its groups, and forwards the combined records through
// add into the task's shuffle output for that partition.
func combinePartition(ctx context.Context, j *Job, taskID, p int, sorter *extsort.Sorter, add func(key, value []byte) error, counters *Counters) error {
	combiner := j.NewCombiner()
	tc := &TaskContext{
		JobName: j.Name, TaskID: taskID, Phase: "combine", Partition: p,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := combiner.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			return err
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	defer it.Close()
	combineOut := counters.Counter(CounterCombineOutputRecs)
	shuffleBytes := counters.Counter(CounterReduceShuffleBytes)
	emit := Emit(func(key, value []byte) error {
		combineOut.Add(1)
		shuffleBytes.Add(int64(len(key) + len(value)))
		return add(key, value)
	})
	vals := newValues(it, j.GroupCompare)
	for vals.nextGroup() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := combiner.Reduce(vals.Key(), vals, emit); err != nil {
			return err
		}
		counters.Add(CounterCombineInputRecs, vals.Count())
	}
	if err := vals.Err(); err != nil {
		return err
	}
	if c, ok := combiner.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			return err
		}
	}
	return nil
}

// runReduceTask multi-way merges every map task's sealed runs for
// partition p and feeds the merged groups to the reducer. It takes
// ownership of runs.
func runReduceTask(ctx context.Context, j *Job, p int, runs []*extsort.Run, sink Sink, counters *Counters) error {
	reducer := j.NewReducer()
	tc := &TaskContext{
		JobName: j.Name, TaskID: p, Phase: "reduce", Partition: p,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := reducer.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			discardRuns(runs)
			return fmt.Errorf("reduce task %d setup: %w", p, err)
		}
	}
	w, err := sink.Writer(p)
	if err != nil {
		discardRuns(runs)
		return fmt.Errorf("reduce task %d: sink writer: %w", p, err)
	}
	reduceOutRecs := counters.Counter(CounterReduceOutputRecs)
	reduceOutBytes := counters.Counter(CounterReduceOutputBytes)
	emit := Emit(func(key, value []byte) error {
		reduceOutRecs.Add(1)
		reduceOutBytes.Add(int64(len(key) + len(value)))
		return w.Write(key, value)
	})
	mergeStart := time.Now()
	counters.Add(CounterMergeFanIn, int64(len(runs)))
	it, err := extsort.MergeRuns(j.Compare, runs) // takes ownership of runs
	if err != nil {
		w.Close()
		return fmt.Errorf("reduce task %d: open merge: %w", p, err)
	}
	counters.Add(CounterShuffleMicros, time.Since(mergeStart).Microseconds())
	defer it.Close()

	vals := newValues(it, j.GroupCompare)
	for vals.nextGroup() {
		if err := ctx.Err(); err != nil {
			w.Close()
			return err
		}
		counters.Add(CounterReduceInputGroups, 1)
		if err := reducer.Reduce(vals.Key(), vals, emit); err != nil {
			w.Close()
			return fmt.Errorf("reduce task %d: %w", p, err)
		}
		counters.Add(CounterReduceInputRecords, vals.Count())
	}
	if err := vals.Err(); err != nil {
		w.Close()
		return fmt.Errorf("reduce task %d: merge: %w", p, err)
	}
	if c, ok := reducer.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			w.Close()
			return fmt.Errorf("reduce task %d cleanup: %w", p, err)
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("reduce task %d: close sink: %w", p, err)
	}
	return nil
}

func runMapOnly(ctx context.Context, j *Job, splits []Split, sink Sink, counters *Counters, progress Progress) error {
	// Map-only jobs write each task's output to a per-task writer on the
	// task's own partition index modulo R, preserving partitioning
	// without a shuffle.
	mapStart := time.Now()
	progress.PhaseStart(j.Name, "map")
	defer func() { counters.Add(CounterMapPhaseMillis, time.Since(mapStart).Milliseconds()) }()
	return runTasks(ctx, len(splits), j.MapSlots, func(ctx context.Context, taskID int) error {
		w, err := sink.Writer(taskID % j.NumReducers)
		if err != nil {
			return fmt.Errorf("map task %d: sink writer: %w", taskID, err)
		}
		taskErr := runMapOnlyTask(ctx, j, taskID, splits[taskID], w, counters)
		closeErr := w.Close()
		if taskErr != nil {
			return taskErr
		}
		if closeErr != nil {
			return closeErr
		}
		progress.TaskDone(j.Name, "map")
		return nil
	})
}

// runMapOnlyTask executes one task of a map-only job, writing the
// mapper's output records straight to w. The caller owns w and closes
// it in success and failure alike, so the local runner can route it
// into the sink while a worker process routes it into a task output
// file.
func runMapOnlyTask(ctx context.Context, j *Job, taskID int, split Split, w SinkWriter, counters *Counters) error {
	mapper := j.NewMapper()
	tc := &TaskContext{
		JobName: j.Name, TaskID: taskID, Phase: "map", Partition: -1,
		NumReducers: j.NumReducers, Counters: counters, SideData: j.SideData, TempDir: j.TempDir,
	}
	if s, ok := mapper.(TaskSetup); ok {
		if err := s.Setup(tc); err != nil {
			return fmt.Errorf("map task %d setup: %w", taskID, err)
		}
	}
	mapOutRecs := counters.Counter(CounterMapOutputRecords)
	mapOutBytes := counters.Counter(CounterMapOutputBytes)
	emit := Emit(func(key, value []byte) error {
		mapOutRecs.Add(1)
		mapOutBytes.Add(int64(len(key) + len(value)))
		return w.Write(key, value)
	})
	var n int64
	err := split.Records(func(key, value []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		n++
		return mapper.Map(key, value, emit)
	})
	counters.Add(CounterMapInputRecords, n)
	if err != nil {
		return fmt.Errorf("map task %d: %w", taskID, err)
	}
	if c, ok := mapper.(TaskCleanup); ok {
		if err := c.Cleanup(emit); err != nil {
			return fmt.Errorf("map task %d cleanup: %w", taskID, err)
		}
	}
	return nil
}

// runTasks executes n tasks with at most slots running concurrently,
// returning the first error. A panicking task is converted into an
// error carrying its stack.
func runTasks(ctx context.Context, n, slots int, task func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if slots > n {
		slots = n
	}
	if slots < 1 {
		slots = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sem := make(chan struct{}, slots)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("task %d panicked: %v\n%s", i, r, debug.Stack()))
				}
			}()
			if err := task(ctx, i); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
