package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func mkKV(k, v string) KV { return KV{Key: []byte(k), Value: []byte(v)} }

func TestMemDatasetBasics(t *testing.T) {
	d := NewMemDataset([][]KV{
		{mkKV("a", "1"), mkKV("b", "2")},
		nil,
		{mkKV("c", "3")},
	})
	if d.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d", d.NumPartitions())
	}
	if d.Records() != 3 {
		t.Fatalf("Records = %d", d.Records())
	}
	var got []string
	for p := 0; p < d.NumPartitions(); p++ {
		err := d.Scan(p, func(k, v []byte) error {
			got = append(got, string(k)+"="+string(v))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if fmt.Sprint(got) != "[a=1 b=2 c=3]" {
		t.Fatalf("scan = %v", got)
	}
	if err := d.Scan(99, func(k, v []byte) error { return nil }); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if len(d.Partition(0)) != 2 {
		t.Fatalf("Partition(0) = %v", d.Partition(0))
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestScanStopsOnError(t *testing.T) {
	d := NewMemDataset([][]KV{{mkKV("a", "1"), mkKV("b", "2")}})
	boom := errors.New("boom")
	n := 0
	err := d.Scan(0, func(k, v []byte) error {
		n++
		return boom
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

func TestConcatDatasets(t *testing.T) {
	a := NewMemDataset([][]KV{{mkKV("a", "1")}, {mkKV("b", "2")}})
	b := NewMemDataset([][]KV{{mkKV("c", "3")}})
	c := ConcatDatasets(a, b)
	if c.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d", c.NumPartitions())
	}
	if c.Records() != 3 {
		t.Fatalf("Records = %d", c.Records())
	}
	recs, err := CollectDataset(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[2].Key) != "c" {
		t.Fatalf("collected %v", recs)
	}
	if err := c.Scan(3, func(k, v []byte) error { return nil }); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if err := c.Release(); err != nil {
		t.Fatal(err)
	}
	// Single-dataset concat returns the dataset itself.
	if ConcatDatasets(a) != Dataset(a) {
		t.Fatal("single concat should be identity")
	}
}

func TestFileDatasetViaJobAndChaining(t *testing.T) {
	// Produce a file-backed dataset, then chain it into a second job via
	// DatasetInput — the disk-backed variant of the APRIORI chaining.
	dir := t.TempDir()
	res, err := Run(context.Background(), &Job{
		Name:        "produce",
		Input:       SliceInput([]KV{mkKV("d", "a b a c b a")}, 1),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 2,
		Sink:        FileSinkFactory(dir),
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), &Job{
		Name:  "consume",
		Input: DatasetInput(res.Output),
		NewMapper: func() Mapper {
			return MapperFunc(func(key, value []byte, emit Emit) error {
				return emit(key, value)
			})
		},
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 1,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectCounts(t, res2.Output)
	if got["a"] != 3 || got["b"] != 2 || got["c"] != 1 {
		t.Fatalf("counts = %v", got)
	}
	if err := res.Output.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseTimingCounters(t *testing.T) {
	res, err := Run(context.Background(), &Job{
		Name:        "timing",
		Input:       SliceInput([]KV{mkKV("d", "x y z")}, 1),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 2,
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phases complete in under a millisecond here, so only presence of
	// the counters (≥ 0) and their sum ≤ wallclock is checkable.
	m := res.Counters.Get(CounterMapPhaseMillis)
	r := res.Counters.Get(CounterReducePhaseMillis)
	if m < 0 || r < 0 {
		t.Fatalf("negative phase timings: %d %d", m, r)
	}
	if m+r > res.Wallclock.Milliseconds()+1 {
		t.Fatalf("phases (%d+%d ms) exceed wallclock %v", m, r, res.Wallclock)
	}
}

func TestEmptyPartitionsInFileSink(t *testing.T) {
	// With more partitions than keys, some partitions stay empty; the
	// file dataset must scan them as empty without error.
	dir := t.TempDir()
	res, err := Run(context.Background(), &Job{
		Name:        "sparse",
		Input:       SliceInput([]KV{mkKV("d", "onlyword")}, 1),
		NewMapper:   func() Mapper { return wcMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 8,
		Sink:        FileSinkFactory(dir),
		TempDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for p := 0; p < res.Output.NumPartitions(); p++ {
		n := 0
		if err := res.Output.Scan(p, func(k, v []byte) error { n++; return nil }); err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("nonEmpty = %d, want 1", nonEmpty)
	}
	if err := res.Output.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestDriverReport(t *testing.T) {
	d := NewDriver()
	for i := 0; i < 2; i++ {
		_, err := d.Run(context.Background(), &Job{
			Name:        fmt.Sprintf("job-%d", i),
			Input:       SliceInput([]KV{mkKV("d", "a b a")}, 1),
			NewMapper:   func() Mapper { return wcMapper{} },
			NewReducer:  func() Reducer { return sumReducer{} },
			NumReducers: 2,
			TempDir:     t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rep := d.Report()
	for _, want := range []string{"#1", "#2", "TOTAL", "wallclock"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	s := Summary("x", d.JobResults[0])
	if s.MapTasks != 1 || s.InputRecords != 1 || s.MapOutRecords != 3 || s.OutputRecords != 2 {
		t.Fatalf("summary = %+v", s)
	}
}
