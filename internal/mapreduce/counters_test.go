package mapreduce

import (
	"fmt"
	"sync"
	"testing"
)

// TestCountersSortedDeterministic asserts Sorted and String render in
// stable name order no matter the insertion order.
func TestCountersSortedDeterministic(t *testing.T) {
	mk := func(names []string) *Counters {
		c := NewCounters()
		for i, n := range names {
			c.Add(n, int64(i+1))
		}
		return c
	}
	a := mk([]string{"B", "A", "C", "D"})
	b := mk([]string{"D", "C", "A", "B"})
	for i := 0; i < 10; i++ {
		sa := a.Sorted()
		for j := 1; j < len(sa); j++ {
			if sa[j-1].Name >= sa[j].Name {
				t.Fatalf("Sorted not ordered: %v", sa)
			}
		}
	}
	wantStr := "A=2\nB=1\nC=3\nD=4\n"
	if a.String() != wantStr {
		t.Errorf("String() = %q, want %q", a.String(), wantStr)
	}
	if b.String() != "A=3\nB=4\nC=2\nD=1\n" {
		t.Errorf("String() = %q", b.String())
	}
}

// TestCountersMergeConcurrentWithAdd exercises the process-runner
// pattern — Merge (and MergeSnapshot) folding worker counters into
// the job group while in-flight tasks still Add — under the race
// detector, and checks no increment is lost.
func TestCountersMergeConcurrentWithAdd(t *testing.T) {
	const (
		adders     = 4
		addsEach   = 2000
		mergers    = 4
		mergesEach = 200
	)
	dst := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cell := dst.Counter(fmt.Sprintf("ADD_%d", g))
			for i := 0; i < addsEach; i++ {
				cell.Add(1)
				dst.Add("SHARED", 1)
			}
		}(g)
	}
	for g := 0; g < mergers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := NewCounters()
			src.Add("MERGED", 1)
			src.Add("SHARED", 1)
			for i := 0; i < mergesEach; i++ {
				if g%2 == 0 {
					dst.Merge(src)
				} else {
					dst.MergeSnapshot(src.Snapshot())
				}
				// Concurrent deterministic reads must not disturb the
				// writers.
				_ = dst.Sorted()
			}
		}(g)
	}
	wg.Wait()
	if got, want := dst.Get("MERGED"), int64(mergers*mergesEach); got != want {
		t.Errorf("MERGED = %d, want %d", got, want)
	}
	if got, want := dst.Get("SHARED"), int64(adders*addsEach+mergers*mergesEach); got != want {
		t.Errorf("SHARED = %d, want %d", got, want)
	}
	for g := 0; g < adders; g++ {
		if got := dst.Get(fmt.Sprintf("ADD_%d", g)); got != addsEach {
			t.Errorf("ADD_%d = %d, want %d", g, got, addsEach)
		}
	}
}
