package mapreduce

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// netTestRunner builds a NetRunner tuned for tests: ephemeral
// coordinator port, two workers, and a short lease TTL so fault drills
// observe expiry and reassignment in well under a second.
func netTestRunner() *NetRunner {
	return &NetRunner{
		Addr:        "127.0.0.1:0",
		Workers:     2,
		MaxAttempts: 3,
		LeaseTTL:    400 * time.Millisecond,
	}
}

// assertSameDataset compares two results partition by partition,
// record by record.
func assertSameDataset(t *testing.T, want, got *Result, wantName, gotName string) {
	t.Helper()
	wp, gp := collectPartitions(t, want.Output), collectPartitions(t, got.Output)
	if len(wp) != len(gp) {
		t.Fatalf("partitions: %s %d, %s %d", wantName, len(wp), gotName, len(gp))
	}
	for p := range wp {
		if len(wp[p]) != len(gp[p]) {
			t.Fatalf("partition %d: %s %d records, %s %d", p, wantName, len(wp[p]), gotName, len(gp[p]))
		}
		for i := range wp[p] {
			if !bytes.Equal(wp[p][i].Key, gp[p][i].Key) || !bytes.Equal(wp[p][i].Value, gp[p][i].Value) {
				t.Fatalf("partition %d record %d differs: %s (%q,%q) %s (%q,%q)",
					p, i, wantName, wp[p][i].Key, wp[p][i].Value, gotName, gp[p][i].Key, gp[p][i].Value)
			}
		}
	}
}

// TestNetRunnerMatchesLocal asserts the net backend produces
// byte-identical output, per partition and in order, with equal record
// counters — and that the work actually crossed the network.
func TestNetRunnerMatchesLocal(t *testing.T) {
	local, err := Run(context.Background(), wcJob(t, LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	netr, err := Run(context.Background(), wcJob(t, netTestRunner()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, local, netr, "local", "net")

	for _, name := range []string{
		CounterMapInputRecords, CounterMapOutputRecords, CounterMapOutputBytes,
		CounterReduceInputGroups, CounterReduceInputRecords, CounterReduceOutputRecs,
	} {
		if l, n := local.Counters.Get(name), netr.Counters.Get(name); l != n {
			t.Errorf("%s: local %d, net %d", name, l, n)
		}
	}
	if got := netr.Counters.Get(CounterNetWorkers); got < 2 {
		t.Errorf("NET_WORKERS = %d, want >= 2", got)
	}
	if got := netr.Counters.Get(CounterWorkerProcs); got < 2 {
		t.Errorf("WORKER_PROCS = %d, want >= 2", got)
	}
	// Reduce inputs were pulled over HTTP from the shuffle services.
	if got := netr.Counters.Get(CounterShuffleFetchBytes); got == 0 {
		t.Error("SHUFFLE_FETCH_BYTES = 0, want > 0")
	}
	// The drained shuffle invariant holds across the wire.
	if w, r := netr.Counters.Get(CounterShuffleBytesWritten), netr.Counters.Get(CounterShuffleBytesRead); w == 0 || w != r {
		t.Errorf("shuffle bytes written/read = %d/%d, want equal and nonzero", w, r)
	}
	if got := local.Counters.Get(CounterNetWorkers); got != 0 {
		t.Errorf("local runner registered %d net workers", got)
	}
}

// TestNetRunnerRetriesCrashedMapWorker kills the worker holding map
// task 0 mid-task (its shuffle service dies with it) and asserts the
// lease expires, the task is retried elsewhere, and the output is
// still byte-identical to the local runner's.
func TestNetRunnerRetriesCrashedMapWorker(t *testing.T) {
	t.Setenv(WorkerCrashEnv, "map:0")
	local, err := Run(context.Background(), wcJob(t, LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	netr, err := Run(context.Background(), wcJob(t, netTestRunner()))
	if err != nil {
		t.Fatalf("job did not survive a crashed map worker: %v", err)
	}
	assertSameDataset(t, local, netr, "local", "net-with-crash")
	if got := netr.Counters.Get(CounterTasksRetried); got < 1 {
		t.Errorf("TASKS_RETRIED = %d, want >= 1", got)
	}
	if got := netr.Counters.Get(CounterLeasesExpired); got < 1 {
		t.Errorf("LEASES_EXPIRED = %d, want >= 1 (the crashed worker's lease)", got)
	}
}

// TestNetRunnerRecoversLostMapOutput kills the worker holding reduce
// task 0. Any map runs that worker produced die with its shuffle
// service, so surviving reduce attempts hit fetch failures; the
// coordinator must re-execute the lost maps and still finish with
// output byte-identical to the local runner's.
func TestNetRunnerRecoversLostMapOutput(t *testing.T) {
	t.Setenv(WorkerCrashEnv, "reduce:0")
	local, err := Run(context.Background(), wcJob(t, LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	netr, err := Run(context.Background(), wcJob(t, netTestRunner()))
	if err != nil {
		t.Fatalf("job did not survive a crashed reduce worker: %v", err)
	}
	assertSameDataset(t, local, netr, "local", "net-with-crash")
	retried := netr.Counters.Get(CounterTasksRetried)
	expired := netr.Counters.Get(CounterLeasesExpired)
	if retried < 1 && expired < 1 {
		t.Errorf("TASKS_RETRIED = %d, LEASES_EXPIRED = %d, want at least one recovery event", retried, expired)
	}
}

// TestNetRunnerExpiresSilentLease mutes the worker holding map task 0:
// it keeps the lease but stops all contact. The coordinator must
// expire the lease, reassign the task, and finish correctly.
func TestNetRunnerExpiresSilentLease(t *testing.T) {
	t.Setenv(NetWorkerMuteEnv, "map:0")
	local, err := Run(context.Background(), wcJob(t, LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	netr, err := Run(context.Background(), wcJob(t, netTestRunner()))
	if err != nil {
		t.Fatalf("job did not survive a silent worker: %v", err)
	}
	assertSameDataset(t, local, netr, "local", "net-with-mute")
	if got := netr.Counters.Get(CounterLeasesExpired); got < 1 {
		t.Errorf("LEASES_EXPIRED = %d, want >= 1", got)
	}
	if got := netr.Counters.Get(CounterTasksRetried); got < 1 {
		t.Errorf("TASKS_RETRIED = %d, want >= 1", got)
	}
}

// TestNetRunnerCrashExhaustsAttempts caps the budget at 1 so the
// injected crash must fail the job, attributing the expired lease.
func TestNetRunnerCrashExhaustsAttempts(t *testing.T) {
	t.Setenv(WorkerCrashEnv, "map:0")
	r := netTestRunner()
	r.MaxAttempts = 1
	_, err := Run(context.Background(), wcJob(t, r))
	if err == nil {
		t.Fatal("job succeeded despite an unretried worker crash")
	}
	if !strings.Contains(err.Error(), "after 1 attempt") {
		t.Errorf("error does not mention exhausted attempts: %v", err)
	}
}

// TestNetRunnerMapOnly checks the map-only path (no shuffle, output
// uploaded straight to the coordinator) matches the local runner.
func TestNetRunnerMapOnly(t *testing.T) {
	mk := func(runner Runner) *Job {
		job := wcJob(t, runner)
		job.Spec = &Spec{Program: tagProgram}
		return job
	}
	local, err := Run(context.Background(), mk(LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	netr, err := Run(context.Background(), mk(netTestRunner()))
	if err != nil {
		t.Fatal(err)
	}
	if l, n := local.Output.Records(), netr.Output.Records(); l != n || l == 0 {
		t.Fatalf("map-only records: local %d, net %d", l, n)
	}
}

// TestNetRunnerExternalWorkers runs a NoSpawn coordinator on a fixed
// port with two externally connected workers (the RunNetWorker library
// path behind `ngrams -worker-connect`).
func TestNetRunnerExternalWorkers(t *testing.T) {
	// Reserve a port for the coordinator so the workers know where to
	// dial before it exists; they retry until it is up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunNetWorker(ctx, "net://"+addr); err != nil {
				t.Errorf("external worker: %v", err)
			}
		}()
	}

	local, err := Run(context.Background(), wcJob(t, LocalRunner{}))
	if err != nil {
		t.Fatal(err)
	}
	r := netTestRunner()
	r.Addr = addr
	r.NoSpawn = true
	netr, err := Run(context.Background(), wcJob(t, r))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()

	assertSameDataset(t, local, netr, "local", "net-external")
	if got := netr.Counters.Get(CounterWorkerProcs); got != 0 {
		t.Errorf("NoSpawn runner spawned %d worker processes", got)
	}
	if got := netr.Counters.Get(CounterNetWorkers); got < 2 {
		t.Errorf("NET_WORKERS = %d, want >= 2", got)
	}
}

// TestNetRunnerFallsBackWithoutSpec runs a closure-only job under the
// net runner: no registered program a remote worker could rebuild, so
// it must execute in-process.
func TestNetRunnerFallsBackWithoutSpec(t *testing.T) {
	job := wcJob(t, netTestRunner())
	job.Spec = nil
	job.NewMapper = func() Mapper {
		return MapperFunc(func(key, value []byte, emit Emit) error {
			return emit([]byte("k"), []byte("v"))
		})
	}
	job.NewReducer = func() Reducer {
		return ReducerFunc(func(key []byte, values *Values, emit Emit) error {
			for values.Next() {
			}
			return emit(key, []byte("done"))
		})
	}
	res, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get(CounterWorkerProcs); got != 0 {
		t.Errorf("spec-less job spawned %d worker procs", got)
	}
	if res.Output.Records() == 0 {
		t.Error("no output records")
	}
}

// TestNewRunnerAddresses exercises the registry parsing: every shipped
// scheme resolves, scheme-specific parameters are honored, and
// malformed or unknown addresses fail loudly.
func TestNewRunnerAddresses(t *testing.T) {
	if r, err := NewRunner("", 0, 0); err != nil {
		t.Errorf("empty address: %v", err)
	} else if _, ok := r.(LocalRunner); !ok {
		t.Errorf("empty address resolved to %T, want LocalRunner", r)
	}
	if r, err := NewRunner("LOCAL", 0, 0); err != nil {
		t.Errorf("case-insensitive scheme: %v", err)
	} else if _, ok := r.(LocalRunner); !ok {
		t.Errorf("LOCAL resolved to %T, want LocalRunner", r)
	}
	if r, err := NewRunner("process", 3, 2); err != nil {
		t.Errorf("process: %v", err)
	} else if pr, ok := r.(*ProcessRunner); !ok {
		t.Errorf("process resolved to %T, want *ProcessRunner", r)
	} else if pr.Workers != 3 || pr.MaxAttempts != 2 {
		t.Errorf("process knobs = (%d,%d), want (3,2)", pr.Workers, pr.MaxAttempts)
	}

	if r, err := NewRunner("net://127.0.0.1:7001?spawn=3", 0, 2); err != nil {
		t.Errorf("net with spawn: %v", err)
	} else if nr, ok := r.(*NetRunner); !ok {
		t.Errorf("net resolved to %T, want *NetRunner", r)
	} else if nr.Addr != "127.0.0.1:7001" || nr.Workers != 3 || nr.NoSpawn || nr.MaxAttempts != 2 {
		t.Errorf("net runner = %+v, want addr 127.0.0.1:7001, 3 workers, spawning", nr)
	}
	if r, err := NewRunner("net://coord.example:7001?spawn=0", 0, 0); err != nil {
		t.Errorf("net with spawn=0: %v", err)
	} else if nr := r.(*NetRunner); !nr.NoSpawn {
		t.Error("spawn=0 did not disable spawning")
	}
	if r, err := NewRunner("net://127.0.0.1:7001?ttl=2s&spec=off", 0, 0); err != nil {
		t.Errorf("net with ttl/spec: %v", err)
	} else if nr := r.(*NetRunner); nr.LeaseTTL != 2*time.Second || nr.SpeculativeDelay >= 0 {
		t.Errorf("ttl/spec knobs = (%v,%v), want (2s, disabled)", nr.LeaseTTL, nr.SpeculativeDelay)
	}
	if r, err := NewRunner("net://127.0.0.1:7001?spec=30s", 0, 0); err != nil {
		t.Errorf("net with spec duration: %v", err)
	} else if nr := r.(*NetRunner); nr.SpeculativeDelay != 30*time.Second {
		t.Errorf("spec=30s parsed as %v", nr.SpeculativeDelay)
	}

	for _, bad := range []string{
		"proces",                         // typo'd scheme
		"tcp://127.0.0.1:7001",           // unknown scheme
		"net://",                         // missing address
		"net://127.0.0.1:7001?spwan=3",   // typo'd parameter
		"net://127.0.0.1:7001?spawn=x",   // malformed count
		"net://127.0.0.1:7001?ttl=fast",  // malformed duration
		"net://127.0.0.1:7001?ttl=-2s",   // non-positive TTL
		"net://127.0.0.1:7001?spec=soon", // malformed delay
		"net://host:7001/path",           // junk path
		"process://somewhere",            // address on an addressless backend
		"local://somewhere",
	} {
		if _, err := NewRunner(bad, 0, 0); err == nil {
			t.Errorf("NewRunner(%q) succeeded, want error", bad)
		}
	}
}

// TestSplitRunnerAddress pins the address grammar NewRunner builds on.
func TestSplitRunnerAddress(t *testing.T) {
	for _, tc := range []struct{ in, scheme, rest string }{
		{"", "local", ""},
		{"local", "local", ""},
		{"Process", "process", ""},
		{"net://127.0.0.1:0", "net", "127.0.0.1:0"},
		{"NET://h:1?spawn=2", "net", "h:1?spawn=2"},
	} {
		scheme, rest := splitRunnerAddress(tc.in)
		if scheme != tc.scheme || rest != tc.rest {
			t.Errorf("splitRunnerAddress(%q) = (%q,%q), want (%q,%q)", tc.in, scheme, rest, tc.scheme, tc.rest)
		}
	}
}

// TestRegisterRunnerRejectsBadSchemes pins the registration contract:
// malformed schemes and duplicates panic at init time rather than
// shadowing each other silently.
func TestRegisterRunnerRejectsBadSchemes(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	dummy := func(RunnerConfig) (Runner, error) { return LocalRunner{}, nil }
	expectPanic("empty scheme", func() { RegisterRunner("", dummy) })
	expectPanic("scheme with separator", func() { RegisterRunner("a://b", dummy) })
	expectPanic("nil factory", func() { RegisterRunner("nilfactory", nil) })
	expectPanic("duplicate scheme", func() { RegisterRunner("local", dummy) })
}

// TestNetRunnerEnvSweep runs the job with NGRAMS_RUNNER pointed at the
// net backend — the path the CI net tier uses for the whole suite.
func TestNetRunnerEnvSweep(t *testing.T) {
	t.Setenv(RunnerEnv, "net://127.0.0.1:0?spawn=2")
	job := wcJob(t, nil)
	res, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get(CounterNetWorkers); got < 1 {
		t.Errorf("NET_WORKERS = %d, want >= 1", got)
	}
	if res.Output.Records() == 0 {
		t.Error("no output records")
	}
}
