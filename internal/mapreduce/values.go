package mapreduce

import (
	"ngramstats/internal/extsort"
)

// Values iterates over the values of the current reduce group, in the
// style of Hadoop's reduce(key, Iterable<value>). The slice returned by
// Value is only valid until the next call to Next.
type Values struct {
	it       *extsort.Iterator
	groupCmp extsort.Compare

	groupKey []byte
	cur      []byte
	pending  bool // it holds a not-yet-consumed record
	done     bool // current group exhausted
	eof      bool // underlying iterator exhausted
	count    int64
}

func newValues(it *extsort.Iterator, groupCmp extsort.Compare) *Values {
	v := &Values{it: it, groupCmp: groupCmp}
	v.pending = it.Next()
	v.eof = !v.pending
	v.done = true // no current group until nextGroup is called
	return v
}

// nextGroup advances to the next group, reporting whether one exists.
func (v *Values) nextGroup() bool {
	// Drain any unconsumed values of the current group.
	for v.Next() {
	}
	if v.eof || !v.pending {
		return false
	}
	v.groupKey = append(v.groupKey[:0], v.it.Key()...)
	v.done = false
	v.count = 0
	return true
}

// Key returns the key of the current group. The slice is stable for the
// duration of the group.
func (v *Values) Key() []byte { return v.groupKey }

// Next advances to the next value of the current group.
func (v *Values) Next() bool {
	if v.done {
		return false
	}
	if v.pending {
		// First value of the group (record already positioned).
		v.pending = false
		v.cur = v.it.Value()
		v.count++
		return true
	}
	if !v.it.Next() {
		v.eof = true
		v.done = true
		return false
	}
	if v.groupCmp(v.it.Key(), v.groupKey) != 0 {
		// Start of the next group: buffer it.
		v.pending = true
		v.done = true
		return false
	}
	v.cur = v.it.Value()
	v.count++
	return true
}

// Value returns the current value.
func (v *Values) Value() []byte { return v.cur }

// Count returns the number of values consumed so far in this group.
func (v *Values) Count() int64 { return v.count }

// Err returns any error from the underlying merge iterator.
func (v *Values) Err() error { return v.it.Err() }
