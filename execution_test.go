package ngramstats

import (
	"context"
	"testing"

	"ngramstats/internal/mapreduce"
)

// TestExecutionProcessBackend runs the public API under
// Options.Execution{Runner: "process"} and asserts the result matches
// the in-process default while really using worker processes.
func TestExecutionProcessBackend(t *testing.T) {
	corpus, err := FromText("exec", []string{
		"the quick brown fox jumps over the lazy dog",
		"the quick brown fox is quick",
		"the lazy dog sleeps while the quick brown fox jumps",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(exec Execution) (*Result, map[string]int64) {
		t.Helper()
		job, err := Start(context.Background(), corpus, Options{
			MinFrequency: 2, MaxLength: 3, TempDir: t.TempDir(), Execution: exec,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res, job.Counters()
	}
	local, lc := run(Execution{Runner: "local"})
	proc, pc := run(Execution{Runner: "process", Workers: 2})
	defer local.Release()
	defer proc.Release()

	if lc[mapreduce.CounterWorkerProcs] != 0 {
		t.Errorf("local execution spawned %d workers", lc[mapreduce.CounterWorkerProcs])
	}
	if pc[mapreduce.CounterWorkerProcs] == 0 {
		t.Error("process execution spawned no workers")
	}
	if local.Len() == 0 || local.Len() != proc.Len() {
		t.Fatalf("n-grams: local %d, process %d", local.Len(), proc.Len())
	}
	lt, err := local.TopK(int(local.Len()))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := proc.TopK(int(proc.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lt {
		if lt[i].Text != pt[i].Text || lt[i].Frequency != pt[i].Frequency {
			t.Fatalf("rank %d: local %q×%d, process %q×%d",
				i, lt[i].Text, lt[i].Frequency, pt[i].Text, pt[i].Frequency)
		}
	}
}

// TestExecutionNetBackend runs the public API under a net://
// runner address: a coordinator on an ephemeral port with two spawned
// workers pulling tasks over HTTP.
func TestExecutionNetBackend(t *testing.T) {
	corpus, err := FromText("exec-net", []string{
		"the quick brown fox jumps over the lazy dog",
		"the quick brown fox is quick",
		"the lazy dog sleeps while the quick brown fox jumps",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(exec Execution) (*Result, map[string]int64) {
		t.Helper()
		job, err := Start(context.Background(), corpus, Options{
			MinFrequency: 2, MaxLength: 3, TempDir: t.TempDir(), Execution: exec,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res, job.Counters()
	}
	local, _ := run(Execution{Runner: "local"})
	netr, nc := run(Execution{Runner: "net://127.0.0.1:0", Workers: 2})
	defer local.Release()
	defer netr.Release()

	if nc[mapreduce.CounterNetWorkers] == 0 {
		t.Error("net execution registered no net workers")
	}
	if nc[mapreduce.CounterShuffleFetchBytes] == 0 {
		t.Error("net execution fetched no shuffle bytes over HTTP")
	}
	if local.Len() == 0 || local.Len() != netr.Len() {
		t.Fatalf("n-grams: local %d, net %d", local.Len(), netr.Len())
	}
	lt, err := local.TopK(int(local.Len()))
	if err != nil {
		t.Fatal(err)
	}
	nt, err := netr.TopK(int(netr.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lt {
		if lt[i].Text != nt[i].Text || lt[i].Frequency != nt[i].Frequency {
			t.Fatalf("rank %d: local %q×%d, net %q×%d",
				i, lt[i].Text, lt[i].Frequency, nt[i].Text, nt[i].Frequency)
		}
	}
}

// TestExecutionUnknownRunner asserts a bad backend name surfaces as a
// Start error.
func TestExecutionUnknownRunner(t *testing.T) {
	corpus, err := FromText("exec", []string{"a b c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(context.Background(), corpus, Options{Execution: Execution{Runner: "cluster"}}); err == nil {
		t.Fatal("Start accepted unknown runner")
	}
}
