package ngramstats

import (
	"fmt"
	"math/rand"
	"os"

	"ngramstats/internal/corpus"
	"ngramstats/internal/synth"
)

// Corpus is a document collection prepared for n-gram computation:
// boilerplate-filtered, sentence-split, tokenized, and encoded as
// integer term sequences with a frequency-ranked dictionary.
type Corpus struct {
	col *corpus.Collection
}

// CorpusStats summarizes a corpus (the paper's Table I).
type CorpusStats struct {
	Documents       int64
	TermOccurrences int64
	DistinctTerms   int64
	Sentences       int64
	SentenceLenMean float64
	SentenceLenSD   float64
}

// FromText builds a corpus from raw document texts. years may be nil
// or must have one publication year per document (used by time-series
// aggregation).
func FromText(name string, docs []string, years []int) (*Corpus, error) {
	col, err := corpus.FromText(name, docs, years, false)
	if err != nil {
		return nil, err
	}
	return &Corpus{col: col}, nil
}

// FromWebText builds a corpus from raw web page texts, applying
// boilerplate filtering before sentence detection (the ClueWeb09-B
// pre-processing of the paper).
func FromWebText(name string, docs []string, years []int) (*Corpus, error) {
	col, err := corpus.FromText(name, docs, years, true)
	if err != nil {
		return nil, err
	}
	return &Corpus{col: col}, nil
}

// FromTextFiles builds a corpus with one document per file path.
func FromTextFiles(name string, paths []string) (*Corpus, error) {
	docs := make([]string, len(paths))
	for i, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("ngramstats: read %s: %w", p, err)
		}
		docs[i] = string(b)
	}
	return FromText(name, docs, nil)
}

// SyntheticNYT generates the NYT-like evaluation corpus at the given
// document count: clean Zipfian news text over 1987–2007 with injected
// quotations, recipes and chess openings (the long frequent n-grams
// the paper observes in The New York Times Annotated Corpus).
func SyntheticNYT(docs int, seed int64) *Corpus {
	return &Corpus{col: synth.Generate(synth.NYTLike(docs, seed))}
}

// SyntheticCW generates the ClueWeb09-B-like evaluation corpus:
// noisier web text from 2009 with repeated spam blocks and stack
// traces.
func SyntheticCW(docs int, seed int64) *Corpus {
	return &Corpus{col: synth.Generate(synth.CWLike(docs, seed))}
}

// Load reads a corpus previously persisted with Save.
func Load(name, dir string) (*Corpus, error) {
	col, err := corpus.ReadShards(name, dir)
	if err != nil {
		return nil, err
	}
	return &Corpus{col: col}, nil
}

// Save persists the corpus into dir as a dictionary file plus the given
// number of binary shards.
func (c *Corpus) Save(dir string, shards int) error {
	return corpus.WriteShards(c.col, dir, shards)
}

// Name returns the corpus label.
func (c *Corpus) Name() string { return c.col.Name }

// Stats computes corpus characteristics.
func (c *Corpus) Stats() CorpusStats {
	st := c.col.Stats()
	return CorpusStats{
		Documents:       st.Documents,
		TermOccurrences: st.TermOccurrences,
		DistinctTerms:   st.DistinctTerms,
		Sentences:       st.Sentences,
		SentenceLenMean: st.SentenceLenMean,
		SentenceLenSD:   st.SentenceLenSD,
	}
}

// Sample returns a corpus containing a random fraction of the
// documents, drawn deterministically from seed.
func (c *Corpus) Sample(fraction float64, seed int64) *Corpus {
	return &Corpus{col: c.col.Sample(fraction, seed)}
}

// Split partitions the corpus into two disjoint document sets of the
// given fraction (train) and its complement (test), deterministically
// from seed.
func (c *Corpus) Split(fraction float64, seed int64) (train, test *Corpus) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	n := int(fraction * float64(len(c.col.Docs)))
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(c.col.Docs))
	tr := &corpus.Collection{Name: c.col.Name + "-train", Dict: c.col.Dict}
	te := &corpus.Collection{Name: c.col.Name + "-test", Dict: c.col.Dict}
	for i, idx := range perm {
		if i < n {
			tr.Docs = append(tr.Docs, c.col.Docs[idx])
		} else {
			te.Docs = append(te.Docs, c.col.Docs[idx])
		}
	}
	return &Corpus{col: tr}, &Corpus{col: te}
}

// Sentences returns up to limit sentences of the corpus as word
// slices (limit ≤ 0 returns all).
func (c *Corpus) Sentences(limit int) [][]string {
	var out [][]string
	for i := range c.col.Docs {
		for _, s := range c.col.Docs[i].Sentences {
			if limit > 0 && len(out) >= limit {
				return out
			}
			words := make([]string, len(s))
			for j, id := range s {
				words[j] = c.Term(id)
			}
			out = append(out, words)
		}
	}
	return out
}

// Term returns the word for a term identifier, or "" if unknown.
func (c *Corpus) Term(id uint32) string {
	if c.col.Dict == nil {
		return ""
	}
	return c.col.Dict.Term(id)
}

// TermID returns the identifier of a word.
func (c *Corpus) TermID(word string) (uint32, bool) {
	if c.col.Dict == nil {
		return 0, false
	}
	return c.col.Dict.ID(word)
}

// collection exposes the underlying collection to sibling files.
func (c *Corpus) collection() *corpus.Collection { return c.col }
