package ngramstats

import (
	"context"
	"fmt"
	"iter"
	"math/rand"
	"os"

	"ngramstats/internal/corpus"
	"ngramstats/internal/synth"
)

// Corpus is a document collection prepared for n-gram computation:
// boilerplate-filtered, sentence-split, tokenized, and encoded as
// integer term sequences with a frequency-ranked dictionary.
type Corpus struct {
	col *corpus.Collection
}

// Document is one raw document entering a corpus build.
type Document struct {
	// ID identifies the document (used by DocumentIndex aggregation and
	// the shard format). The zero value auto-assigns the document's
	// ordinal position in Add order.
	ID int64
	// Text is the raw document text. It is consumed during Add and not
	// retained.
	Text string
	// Year is the publication year (used by TimeSeries aggregation);
	// zero if unknown.
	Year int
	// Web marks web-page text: it passes boilerplate filtering before
	// sentence detection (the ClueWeb09-B pre-processing of the paper).
	Web bool
}

// BuilderOptions configures incremental corpus construction.
type BuilderOptions struct {
	// MemoryBudget bounds the bytes of encoded documents the builder
	// keeps resident during ingestion; past it, encoded documents spill
	// to a temporary disk shard. Zero selects 256 MiB. The term
	// dictionary always stays resident, and so does the finished
	// corpus: Finish reads spilled documents back, so the budget caps
	// the ingestion peak (raw text is never accumulated), not the final
	// corpus size. For corpora at rest larger than memory, persist with
	// Corpus.Save and compute from the shards.
	MemoryBudget int
	// TempDir is the directory for spilled shards (default: system
	// temp).
	TempDir string
}

// CorpusBuilder constructs a corpus incrementally: each Add tokenizes
// and integer-encodes one document and releases its raw text, and
// encoded documents beyond the memory budget spill to disk. Finish
// freezes the frequency-ranked dictionary and produces the corpus. A
// streamed build yields a corpus identical to FromText over the same
// documents in the same order.
type CorpusBuilder struct {
	b           *corpus.Builder
	sawExplicit bool
	sawAuto     bool
}

// NewCorpusBuilder returns an empty builder for a corpus with the
// given name.
func NewCorpusBuilder(name string, opts BuilderOptions) *CorpusBuilder {
	return &CorpusBuilder{b: corpus.NewBuilder(name, corpus.BuilderOptions{
		MemoryBudget: opts.MemoryBudget,
		TempDir:      opts.TempDir,
	})}
}

// Add ingests one document. A zero-value ID takes the document's
// ordinal position in Add order. Mixing the two styles in one build is
// rejected in both directions — a zero-value ID after explicit IDs,
// or an explicit ID after auto-assigned ordinals — rather than risking
// a silent collision between an ordinal and an explicit identifier.
// (An explicit ID of 0 is only representable as the first document;
// assign IDs starting from 1 to avoid the ambiguity entirely.
// Uniqueness among caller-supplied explicit IDs is the caller's
// responsibility.)
func (cb *CorpusBuilder) Add(doc Document) error {
	id := doc.ID
	if id == 0 {
		if cb.sawExplicit {
			return fmt.Errorf("ngramstats: document %d has ID 0 after explicitly assigned IDs; assign every ID (non-zero) or none", cb.b.Added())
		}
		id = cb.b.Added()
		if id > 0 {
			// Position 0 is ambiguous (ordinal and explicit 0 coincide) and
			// harmless; from position 1 on, auto-assignment is committed.
			cb.sawAuto = true
		}
	} else {
		if cb.sawAuto {
			return fmt.Errorf("ngramstats: document with explicit ID %d after auto-assigned IDs; assign every ID (non-zero) or none", id)
		}
		cb.sawExplicit = true
	}
	return cb.b.Add(id, doc.Year, doc.Text, doc.Web)
}

// Added returns the number of documents ingested so far.
func (cb *CorpusBuilder) Added() int64 { return cb.b.Added() }

// Finish freezes the dictionary and returns the completed corpus. The
// builder must not be used afterwards.
func (cb *CorpusBuilder) Finish() (*Corpus, error) {
	col, err := cb.b.Finish()
	if err != nil {
		return nil, err
	}
	return &Corpus{col: col}, nil
}

// Discard releases the builder's resources (buffered documents,
// spilled shards) without producing a corpus.
func (cb *CorpusBuilder) Discard() { cb.b.Discard() }

// FromDocuments builds a corpus from a document stream, honoring ctx
// cancellation between documents. It is the streaming counterpart of
// FromText: documents are tokenized and encoded as they arrive, and
// encoded documents past the memory budget spill to disk, so the raw
// stream's total size may far exceed RAM (the encoded corpus itself
// must still fit; see BuilderOptions.MemoryBudget).
func FromDocuments(ctx context.Context, name string, docs iter.Seq2[Document, error], opts BuilderOptions) (*Corpus, error) {
	cb := NewCorpusBuilder(name, opts)
	for doc, err := range docs {
		if err != nil {
			cb.Discard()
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			cb.Discard()
			return nil, err
		}
		if err := cb.Add(doc); err != nil {
			cb.Discard()
			return nil, err
		}
	}
	return cb.Finish()
}

// CorpusStats summarizes a corpus (the paper's Table I).
type CorpusStats struct {
	Documents       int64
	TermOccurrences int64
	DistinctTerms   int64
	Sentences       int64
	SentenceLenMean float64
	SentenceLenSD   float64
}

// FromText builds a corpus from in-memory document texts, one builder
// Add per document. years may be nil or must have one publication year
// per document (used by time-series aggregation). For document sets
// too large to hold as strings, use CorpusBuilder or FromDocuments.
func FromText(name string, docs []string, years []int) (*Corpus, error) {
	return fromTexts(name, docs, years, false)
}

// FromWebText builds a corpus from raw web page texts, applying
// boilerplate filtering before sentence detection (the ClueWeb09-B
// pre-processing of the paper).
func FromWebText(name string, docs []string, years []int) (*Corpus, error) {
	return fromTexts(name, docs, years, true)
}

func fromTexts(name string, docs []string, years []int, web bool) (*Corpus, error) {
	col, err := corpus.FromText(name, docs, years, web)
	if err != nil {
		return nil, err
	}
	return &Corpus{col: col}, nil
}

// FileDocuments streams one Document per file path, reading file by
// file so only one file's raw text is resident at a time. Documents
// take ordinal IDs; web routes them through boilerplate filtering.
func FileDocuments(paths []string, web bool) iter.Seq2[Document, error] {
	return func(yield func(Document, error) bool) {
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				yield(Document{}, fmt.Errorf("ngramstats: read %s: %w", p, err))
				return
			}
			if !yield(Document{Text: string(b), Web: web}, nil) {
				return
			}
		}
	}
}

// FromTextFiles builds a corpus with one document per file path,
// streaming file by file: only one file's raw text is resident at a
// time.
func FromTextFiles(name string, paths []string) (*Corpus, error) {
	return FromDocuments(context.Background(), name, FileDocuments(paths, false), BuilderOptions{})
}

// SyntheticNYT generates the NYT-like evaluation corpus at the given
// document count: clean Zipfian news text over 1987–2007 with injected
// quotations, recipes and chess openings (the long frequent n-grams
// the paper observes in The New York Times Annotated Corpus).
func SyntheticNYT(docs int, seed int64) *Corpus {
	return &Corpus{col: synth.Generate(synth.NYTLike(docs, seed))}
}

// SyntheticCW generates the ClueWeb09-B-like evaluation corpus:
// noisier web text from 2009 with repeated spam blocks and stack
// traces.
func SyntheticCW(docs int, seed int64) *Corpus {
	return &Corpus{col: synth.Generate(synth.CWLike(docs, seed))}
}

// Load reads a corpus previously persisted with Save.
func Load(name, dir string) (*Corpus, error) {
	col, err := corpus.ReadShards(name, dir)
	if err != nil {
		return nil, err
	}
	return &Corpus{col: col}, nil
}

// Save persists the corpus into dir as a dictionary file plus the given
// number of binary shards.
func (c *Corpus) Save(dir string, shards int) error {
	return corpus.WriteShards(c.col, dir, shards)
}

// Name returns the corpus label.
func (c *Corpus) Name() string { return c.col.Name }

// Stats computes corpus characteristics.
func (c *Corpus) Stats() CorpusStats {
	st := c.col.Stats()
	return CorpusStats{
		Documents:       st.Documents,
		TermOccurrences: st.TermOccurrences,
		DistinctTerms:   st.DistinctTerms,
		Sentences:       st.Sentences,
		SentenceLenMean: st.SentenceLenMean,
		SentenceLenSD:   st.SentenceLenSD,
	}
}

// Sample returns a corpus containing a random fraction of the
// documents, drawn deterministically from seed. Sampled documents keep
// their identifiers and publication years, and the sample shares the
// parent's dictionary, so term identifiers (and thus encoded n-grams)
// remain comparable across parent and sample.
func (c *Corpus) Sample(fraction float64, seed int64) *Corpus {
	return &Corpus{col: c.col.Sample(fraction, seed)}
}

// Split partitions the corpus into two disjoint document sets of the
// given fraction (train) and its complement (test), deterministically
// from seed. Both halves share the parent's dictionary — term
// identifiers stay comparable across them — and every document carries
// its identifier and publication year into its half, so TimeSeries and
// DocumentIndex aggregations over a split behave exactly as over the
// parent. The permutation is drawn over the in-memory document set;
// splitting is a driver-side operation, not a MapReduce job.
func (c *Corpus) Split(fraction float64, seed int64) (train, test *Corpus) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	n := int(fraction * float64(len(c.col.Docs)))
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(c.col.Docs))
	tr := &corpus.Collection{Name: c.col.Name + "-train", Dict: c.col.Dict}
	te := &corpus.Collection{Name: c.col.Name + "-test", Dict: c.col.Dict}
	for i, idx := range perm {
		if i < n {
			tr.Docs = append(tr.Docs, c.col.Docs[idx])
		} else {
			te.Docs = append(te.Docs, c.col.Docs[idx])
		}
	}
	return &Corpus{col: tr}, &Corpus{col: te}
}

// Sentences returns up to limit sentences of the corpus as word
// slices (limit ≤ 0 returns all).
func (c *Corpus) Sentences(limit int) [][]string {
	var out [][]string
	for i := range c.col.Docs {
		for _, s := range c.col.Docs[i].Sentences {
			if limit > 0 && len(out) >= limit {
				return out
			}
			words := make([]string, len(s))
			for j, id := range s {
				words[j] = c.Term(id)
			}
			out = append(out, words)
		}
	}
	return out
}

// Term returns the word for a term identifier, or "" if unknown.
func (c *Corpus) Term(id uint32) string {
	if c.col.Dict == nil {
		return ""
	}
	return c.col.Dict.Term(id)
}

// TermID returns the identifier of a word.
func (c *Corpus) TermID(word string) (uint32, bool) {
	if c.col.Dict == nil {
		return 0, false
	}
	return c.col.Dict.ID(word)
}

// collection exposes the underlying collection to sibling files.
func (c *Corpus) collection() *corpus.Collection { return c.col }
