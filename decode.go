package ngramstats

import (
	"sort"
	"strings"

	"ngramstats/internal/core"
	"ngramstats/internal/sequence"
)

// resolver renders encoded n-grams as NGram values and orders them the
// way the public API reports. It is the seam shared by the live Result
// and the persistent Index: both decode the same records, one from the
// in-process result set and one from an index reopened on disk, and
// sharing the rendering and tie-break logic is what makes their
// answers byte-identical.
type resolver struct {
	// term returns the dictionary word for an identifier, or "" when
	// unknown (rendered as "#id").
	term func(id uint32) string
}

func (rv resolver) decode(s sequence.Seq, agg core.Aggregate) NGram {
	ng := NGram{
		IDs:       append([]uint32(nil), s...),
		Frequency: agg.Frequency(),
	}
	if years, ok := core.TimeSeriesCounts(agg); ok {
		ng.Years = years
	}
	if docs, ok := core.DocIndexCounts(agg); ok {
		ng.Documents = docs
	}
	words := make([]string, len(s))
	for i, id := range s {
		words[i] = rv.word(id)
	}
	ng.Text = strings.Join(words, " ")
	return ng
}

// word renders one term: the dictionary word, or "#id" for an
// identifier outside the dictionary.
func (rv resolver) word(id uint32) string {
	if w := rv.term(id); w != "" {
		return w
	}
	return "#" + itoa(uint64(id))
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// seqTextLess reports whether a's rendered text sorts before b's,
// comparing word by word without materializing the joined strings.
// Tokens contain no spaces and no bytes below ' ', so word-wise
// comparison agrees with comparing strings.Join(words, " ").
func (rv resolver) seqTextLess(a, b sequence.Seq) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		wa, wb := rv.word(a[i]), rv.word(b[i])
		if wa != wb {
			return wa < wb
		}
	}
	return len(a) < len(b)
}

// topKBetter orders by descending frequency; ties break toward longer
// n-grams, then lexicographically. It is the TopK report order.
func (rv resolver) topKBetter(a, b rawNGram) bool {
	if a.cf != b.cf {
		return a.cf > b.cf
	}
	if len(a.seq) != len(b.seq) {
		return len(a.seq) > len(b.seq)
	}
	return rv.seqTextLess(a.seq, b.seq)
}

// longestBetter orders by descending length; ties break toward higher
// frequency, then lexicographically. It is the Longest report order.
func (rv resolver) longestBetter(a, b rawNGram) bool {
	if len(a.seq) != len(b.seq) {
		return len(a.seq) > len(b.seq)
	}
	if a.cf != b.cf {
		return a.cf > b.cf
	}
	return rv.seqTextLess(a.seq, b.seq)
}

// rawNGram is one undecoded result entry retained by the bounded
// top-k selection: the encoded term sequence, its aggregate, and the
// aggregate's frequency cached for comparisons.
type rawNGram struct {
	seq sequence.Seq
	agg core.Aggregate
	cf  int64
}

// eachAggregateFunc streams every (sequence, aggregate) pair of a
// result source. The sequences passed to the callback must be safe to
// retain. Result and Index each provide one.
type eachAggregateFunc func(fn func(s sequence.Seq, agg core.Aggregate) error) error

// selectTopRaw streams the source through a bounded min-heap keeping
// the k best entries under better, returned best first. Memory is
// O(k), independent of the source size; total clamps k.
func selectTopRaw(each eachAggregateFunc, total int64, k int, better func(a, b rawNGram) bool) ([]rawNGram, error) {
	if k < 0 {
		k = 0
	}
	if int64(k) > total {
		k = int(total)
	}
	t := boundedTop{k: k, better: better}
	err := each(func(s sequence.Seq, agg core.Aggregate) error {
		t.offer(rawNGram{seq: s, agg: agg, cf: agg.Frequency()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	entries := t.heap
	sort.Slice(entries, func(i, j int) bool { return better(entries[i], entries[j]) })
	return entries, nil
}

// selectTop is selectTopRaw followed by decoding exactly the survivors.
func (rv resolver) selectTop(each eachAggregateFunc, total int64, k int, better func(a, b rawNGram) bool) ([]NGram, error) {
	entries, err := selectTopRaw(each, total, k, better)
	if err != nil {
		return nil, err
	}
	out := make([]NGram, len(entries))
	for i, e := range entries {
		out[i] = rv.decode(e.seq, e.agg)
	}
	return out, nil
}

// boundedTop is a min-heap of capacity k whose root is the worst
// retained entry, so a streamed candidate either evicts the root or is
// dropped in O(log k).
type boundedTop struct {
	k      int
	better func(a, b rawNGram) bool
	heap   []rawNGram
}

// worse orders the heap: the root must be the entry every other
// retained entry beats.
func (t *boundedTop) worse(a, b rawNGram) bool { return t.better(b, a) }

func (t *boundedTop) offer(e rawNGram) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, e)
		t.up(len(t.heap) - 1)
		return
	}
	if !t.better(e, t.heap[0]) {
		return
	}
	t.heap[0] = e
	t.down(0)
}

func (t *boundedTop) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[parent]) {
			break
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *boundedTop) down(i int) {
	n := len(t.heap)
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && t.worse(t.heap[left], t.heap[least]) {
			least = left
		}
		if right < n && t.worse(t.heap[right], t.heap[least]) {
			least = right
		}
		if least == i {
			return
		}
		t.heap[i], t.heap[least] = t.heap[least], t.heap[i]
		i = least
	}
}
