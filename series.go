package ngramstats

import (
	"ngramstats/internal/timeseries"
)

// Series is a dense yearly n-gram time series (the Section VI-B
// extension), with the normalization and comparison operations
// culturomics-style analyses use.
type Series struct {
	inner *timeseries.Series
}

// Series converts the n-gram's per-year counts (Aggregation:
// TimeSeries) into a dense series over [start, end]. It returns nil if
// the n-gram carries no time-series data.
func (n NGram) Series(start, end int) *Series {
	if n.Years == nil {
		return nil
	}
	return &Series{inner: timeseries.FromCounts(n.Years, start, end)}
}

// Start returns the first year.
func (s *Series) Start() int { return s.inner.Start }

// End returns the last year.
func (s *Series) End() int { return s.inner.End() }

// At returns the observation for a year (zero outside the range).
func (s *Series) At(year int) float64 { return s.inner.At(year) }

// Total returns the sum of all observations.
func (s *Series) Total() float64 { return s.inner.Total() }

// Normalize divides each observation by the corresponding value of
// denom (typically the per-year total over all n-grams), yielding
// relative frequencies.
func (s *Series) Normalize(denom *Series) *Series {
	return &Series{inner: s.inner.Normalize(denom.inner)}
}

// MovingAverage smooths the series with a centered window.
func (s *Series) MovingAverage(window int) *Series {
	return &Series{inner: s.inner.MovingAverage(window)}
}

// PeakYear returns the year of the maximum observation and its value.
func (s *Series) PeakYear() (int, float64) { return s.inner.PeakYear() }

// Sparkline renders the series as a compact unicode bar chart.
func (s *Series) Sparkline() string { return s.inner.Sparkline() }

// String renders the series with its year range.
func (s *Series) String() string { return s.inner.String() }

// Correlation returns the Pearson correlation of two series over their
// overlapping years (NaN when undefined).
func Correlation(a, b *Series) float64 {
	return timeseries.Correlation(a.inner, b.inner)
}
