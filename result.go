package ngramstats

import (
	"errors"
	"iter"
	"sort"
	"strings"
	"time"

	"ngramstats/internal/core"
	"ngramstats/internal/sequence"
)

// NGram is one reported n-gram with its statistics.
type NGram struct {
	// IDs are the term identifiers.
	IDs []uint32
	// Text is the space-joined word form (empty terms render as the
	// identifier).
	Text string
	// Frequency is the collection frequency cf: the total number of
	// occurrences in the corpus.
	Frequency int64
	// Years holds per-year occurrence counts (Aggregation: TimeSeries).
	Years map[int]int64
	// Documents holds per-document occurrence counts (Aggregation:
	// DocumentIndex).
	Documents map[int64]int64
}

// Length returns the number of words.
func (n NGram) Length() int { return len(n.IDs) }

// Result is the outcome of a computation (Count, or Start + Wait).
type Result struct {
	corpus *Corpus
	run    *core.Run
}

// Len returns the number of reported n-grams.
func (r *Result) Len() int64 { return r.run.Result.Len() }

// Wallclock returns the total elapsed time across all MapReduce jobs.
func (r *Result) Wallclock() time.Duration { return r.run.Wallclock }

// Jobs returns the number of MapReduce jobs the method launched.
func (r *Result) Jobs() int { return r.run.Jobs }

// BytesTransferred returns the bytes moved between map and reduce
// phases over all jobs (the paper's measure b).
func (r *Result) BytesTransferred() int64 { return r.run.BytesTransferred() }

// RecordsTransferred returns the key-value pairs moved between map and
// reduce phases over all jobs (the paper's measure c).
func (r *Result) RecordsTransferred() int64 { return r.run.RecordsTransferred() }

// ShuffleBytes returns the measured shuffle transfer over all jobs:
// the encoded run-format bytes map tasks actually handed to reduce
// tasks, after front-coding and any block codec — the on-the-wire
// counterpart of BytesTransferred's logical byte count.
func (r *Result) ShuffleBytes() int64 { return r.run.ShuffleBytesWritten() }

// errStop is the sentinel that terminates an internal result scan
// early without reporting an error to the caller.
var errStop = errors.New("ngramstats: stop iteration")

// NGrams returns an iterator over every reported n-gram, decoding one
// n-gram at a time: ranging over it never materializes the result set.
// Iteration order is unspecified. A decode error is yielded as the
// final pair (with a zero NGram) and ends the iteration; breaking out
// of the range stops the underlying scan immediately.
//
//	for ng, err := range result.NGrams() {
//		if err != nil { ... }
//		use(ng)
//	}
func (r *Result) NGrams() iter.Seq2[NGram, error] {
	return func(yield func(NGram, error) bool) {
		err := r.run.Result.EachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
			if !yield(r.decode(s, agg), nil) {
				return errStop
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStop) {
			yield(NGram{}, err)
		}
	}
}

// Each calls fn for every reported n-gram. Iteration order is
// unspecified. Returning an error from fn stops iteration. NGrams is
// the range-over-func equivalent.
func (r *Result) Each(fn func(NGram) error) error {
	return r.run.Result.EachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
		return fn(r.decode(s, agg))
	})
}

func (r *Result) decode(s sequence.Seq, agg core.Aggregate) NGram {
	ng := NGram{
		IDs:       append([]uint32(nil), s...),
		Frequency: agg.Frequency(),
	}
	if years, ok := core.TimeSeriesCounts(agg); ok {
		ng.Years = years
	}
	if docs, ok := core.DocIndexCounts(agg); ok {
		ng.Documents = docs
	}
	words := make([]string, len(s))
	for i, id := range s {
		if w := r.corpus.Term(id); w != "" {
			words[i] = w
		} else {
			words[i] = "#" + itoa(uint64(id))
		}
	}
	ng.Text = strings.Join(words, " ")
	return ng
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// All collects every reported n-gram into a slice. For very large
// results prefer NGrams, which streams.
func (r *Result) All() ([]NGram, error) {
	out := make([]NGram, 0, r.Len())
	err := r.Each(func(ng NGram) error {
		out = append(out, ng)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// rawNGram is one undecoded result entry retained by the bounded
// top-k selection: the encoded term sequence, its aggregate, and the
// aggregate's frequency cached for comparisons.
type rawNGram struct {
	seq sequence.Seq
	agg core.Aggregate
	cf  int64
}

// TopK returns the k most frequent n-grams, most frequent first; ties
// break toward longer n-grams, then lexicographically. Selection
// streams over the result with a bounded min-heap: memory and NGram
// decodes are O(k), independent of the result size.
func (r *Result) TopK(k int) ([]NGram, error) {
	return r.selectTop(k, func(a, b rawNGram) bool {
		if a.cf != b.cf {
			return a.cf > b.cf
		}
		if len(a.seq) != len(b.seq) {
			return len(a.seq) > len(b.seq)
		}
		return r.seqTextLess(a.seq, b.seq)
	})
}

// Longest returns the k longest reported n-grams, longest first; ties
// break toward higher frequency, then lexicographically. Like TopK it
// streams with a bounded heap in O(k) memory.
func (r *Result) Longest(k int) ([]NGram, error) {
	return r.selectTop(k, func(a, b rawNGram) bool {
		if len(a.seq) != len(b.seq) {
			return len(a.seq) > len(b.seq)
		}
		if a.cf != b.cf {
			return a.cf > b.cf
		}
		return r.seqTextLess(a.seq, b.seq)
	})
}

// selectTop streams the raw result entries through a bounded min-heap
// keeping the k best under better, then decodes exactly the survivors.
func (r *Result) selectTop(k int, better func(a, b rawNGram) bool) ([]NGram, error) {
	if k < 0 {
		k = 0
	}
	if n := r.Len(); int64(k) > n {
		k = int(n)
	}
	t := boundedTop{k: k, better: better}
	err := r.run.Result.EachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
		t.offer(rawNGram{seq: s, agg: agg, cf: agg.Frequency()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	entries := t.heap
	sort.Slice(entries, func(i, j int) bool { return better(entries[i], entries[j]) })
	out := make([]NGram, len(entries))
	for i, e := range entries {
		out[i] = r.decode(e.seq, e.agg)
	}
	return out, nil
}

// boundedTop is a min-heap of capacity k whose root is the worst
// retained entry, so a streamed candidate either evicts the root or is
// dropped in O(log k).
type boundedTop struct {
	k      int
	better func(a, b rawNGram) bool
	heap   []rawNGram
}

// worse orders the heap: the root must be the entry every other
// retained entry beats.
func (t *boundedTop) worse(a, b rawNGram) bool { return t.better(b, a) }

func (t *boundedTop) offer(e rawNGram) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, e)
		t.up(len(t.heap) - 1)
		return
	}
	if !t.better(e, t.heap[0]) {
		return
	}
	t.heap[0] = e
	t.down(0)
}

func (t *boundedTop) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[parent]) {
			break
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *boundedTop) down(i int) {
	n := len(t.heap)
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && t.worse(t.heap[left], t.heap[least]) {
			least = left
		}
		if right < n && t.worse(t.heap[right], t.heap[least]) {
			least = right
		}
		if least == i {
			return
		}
		t.heap[i], t.heap[least] = t.heap[least], t.heap[i]
		i = least
	}
}

// seqTextLess reports whether a's rendered text sorts before b's,
// comparing word by word without materializing the joined strings.
// Tokens contain no spaces and no bytes below ' ', so word-wise
// comparison agrees with comparing strings.Join(words, " ").
func (r *Result) seqTextLess(a, b sequence.Seq) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		wa, wb := r.word(a[i]), r.word(b[i])
		if wa != wb {
			return wa < wb
		}
	}
	return len(a) < len(b)
}

// word renders one term the way decode does: the dictionary word, or
// "#id" for an identifier outside the dictionary.
func (r *Result) word(id uint32) string {
	if w := r.corpus.Term(id); w != "" {
		return w
	}
	return "#" + itoa(uint64(id))
}

// Lookup returns the statistics of the given phrase, if reported. The
// scan stops at the first match and decodes only the matching n-gram.
func (r *Result) Lookup(phrase string) (NGram, bool, error) {
	words := strings.Fields(phrase)
	ids := make(sequence.Seq, len(words))
	for i, w := range words {
		id, ok := r.corpus.TermID(strings.ToLower(w))
		if !ok {
			return NGram{}, false, nil
		}
		ids[i] = id
	}
	var found NGram
	ok := false
	err := r.run.Result.EachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
		if !sequence.Equal(s, ids) {
			return nil
		}
		found = r.decode(s, agg)
		ok = true
		return errStop
	})
	if err != nil && !errors.Is(err, errStop) {
		return NGram{}, false, err
	}
	return found, ok, nil
}

// Release frees the result's backing storage. The result must not be
// used afterwards.
func (r *Result) Release() error { return r.run.Result.Release() }
