package ngramstats

import (
	"errors"
	"iter"
	"strings"
	"time"

	"ngramstats/internal/core"
	"ngramstats/internal/sequence"
)

// NGram is one reported n-gram with its statistics.
type NGram struct {
	// IDs are the term identifiers.
	IDs []uint32
	// Text is the space-joined word form (empty terms render as the
	// identifier).
	Text string
	// Frequency is the collection frequency cf: the total number of
	// occurrences in the corpus.
	Frequency int64
	// Years holds per-year occurrence counts (Aggregation: TimeSeries).
	Years map[int]int64
	// Documents holds per-document occurrence counts (Aggregation:
	// DocumentIndex).
	Documents map[int64]int64
}

// Length returns the number of words.
func (n NGram) Length() int { return len(n.IDs) }

// Result is the outcome of a computation (Count, or Start + Wait).
type Result struct {
	corpus *Corpus
	run    *core.Run
	// opts is the Options the computation ran with, recorded so Save
	// can persist the parameters (τ, σ, selection) an LSM chain needs
	// to judge appendability.
	opts Options
}

// resolver returns the shared decoder rendering terms through the
// corpus dictionary.
func (r *Result) resolver() resolver {
	return resolver{term: r.corpus.Term}
}

// eachAggregate adapts the result set to the iteration seam shared
// with the persistent Index.
func (r *Result) eachAggregate(fn func(s sequence.Seq, agg core.Aggregate) error) error {
	return r.run.Result.EachAggregate(fn)
}

// Len returns the number of reported n-grams.
func (r *Result) Len() int64 { return r.run.Result.Len() }

// Wallclock returns the total elapsed time across all MapReduce jobs.
func (r *Result) Wallclock() time.Duration { return r.run.Wallclock }

// Jobs returns the number of MapReduce jobs the method launched.
func (r *Result) Jobs() int { return r.run.Jobs }

// BytesTransferred returns the bytes moved between map and reduce
// phases over all jobs (the paper's measure b).
func (r *Result) BytesTransferred() int64 { return r.run.BytesTransferred() }

// RecordsTransferred returns the key-value pairs moved between map and
// reduce phases over all jobs (the paper's measure c).
func (r *Result) RecordsTransferred() int64 { return r.run.RecordsTransferred() }

// ShuffleBytes returns the measured shuffle transfer over all jobs:
// the encoded run-format bytes map tasks actually handed to reduce
// tasks, after front-coding and any block codec — the on-the-wire
// counterpart of BytesTransferred's logical byte count.
func (r *Result) ShuffleBytes() int64 { return r.run.ShuffleBytesWritten() }

// errStop is the sentinel that terminates an internal result scan
// early without reporting an error to the caller.
var errStop = errors.New("ngramstats: stop iteration")

// NGrams returns an iterator over every reported n-gram, decoding one
// n-gram at a time: ranging over it never materializes the result set.
// Iteration order is unspecified. A decode error is yielded as the
// final pair (with a zero NGram) and ends the iteration; breaking out
// of the range stops the underlying scan immediately.
//
//	for ng, err := range result.NGrams() {
//		if err != nil { ... }
//		use(ng)
//	}
func (r *Result) NGrams() iter.Seq2[NGram, error] {
	rv := r.resolver()
	return func(yield func(NGram, error) bool) {
		err := r.eachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
			if !yield(rv.decode(s, agg), nil) {
				return errStop
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStop) {
			yield(NGram{}, err)
		}
	}
}

// Each calls fn for every reported n-gram. Iteration order is
// unspecified. Returning an error from fn stops iteration. NGrams is
// the range-over-func equivalent.
func (r *Result) Each(fn func(NGram) error) error {
	rv := r.resolver()
	return r.eachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
		return fn(rv.decode(s, agg))
	})
}

// All collects every reported n-gram into a slice. For very large
// results prefer NGrams, which streams.
func (r *Result) All() ([]NGram, error) {
	out := make([]NGram, 0, r.Len())
	err := r.Each(func(ng NGram) error {
		out = append(out, ng)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TopK returns the k most frequent n-grams, most frequent first; ties
// break toward longer n-grams, then lexicographically. Selection
// streams over the result with a bounded min-heap: memory and NGram
// decodes are O(k), independent of the result size.
func (r *Result) TopK(k int) ([]NGram, error) {
	rv := r.resolver()
	return rv.selectTop(r.eachAggregate, r.Len(), k, rv.topKBetter)
}

// Longest returns the k longest reported n-grams, longest first; ties
// break toward higher frequency, then lexicographically. Like TopK it
// streams with a bounded heap in O(k) memory.
func (r *Result) Longest(k int) ([]NGram, error) {
	rv := r.resolver()
	return rv.selectTop(r.eachAggregate, r.Len(), k, rv.longestBetter)
}

// Lookup returns the statistics of the given phrase, if reported. The
// scan stops at the first match and decodes only the matching n-gram.
func (r *Result) Lookup(phrase string) (NGram, bool, error) {
	words := strings.Fields(phrase)
	ids := make(sequence.Seq, len(words))
	for i, w := range words {
		id, ok := r.corpus.TermID(strings.ToLower(w))
		if !ok {
			return NGram{}, false, nil
		}
		ids[i] = id
	}
	rv := r.resolver()
	var found NGram
	ok := false
	err := r.eachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
		if !sequence.Equal(s, ids) {
			return nil
		}
		found = rv.decode(s, agg)
		ok = true
		return errStop
	})
	if err != nil && !errors.Is(err, errStop) {
		return NGram{}, false, err
	}
	return found, ok, nil
}

// Release frees the result's backing storage. The result must not be
// used afterwards.
func (r *Result) Release() error { return r.run.Result.Release() }
