package ngramstats

import (
	"context"
	"sort"
	"strings"
	"time"

	"ngramstats/internal/core"
	"ngramstats/internal/sequence"
)

// NGram is one reported n-gram with its statistics.
type NGram struct {
	// IDs are the term identifiers.
	IDs []uint32
	// Text is the space-joined word form (empty terms render as the
	// identifier).
	Text string
	// Frequency is the collection frequency cf: the total number of
	// occurrences in the corpus.
	Frequency int64
	// Years holds per-year occurrence counts (Aggregation: TimeSeries).
	Years map[int]int64
	// Documents holds per-document occurrence counts (Aggregation:
	// DocumentIndex).
	Documents map[int64]int64
}

// Length returns the number of words.
func (n NGram) Length() int { return len(n.IDs) }

// Result is the outcome of a Count run.
type Result struct {
	corpus *Corpus
	run    *core.Run
}

// Count computes n-gram statistics over the corpus.
func Count(ctx context.Context, c *Corpus, opts Options) (*Result, error) {
	method, params := opts.params()
	run, err := core.Compute(ctx, c.collection(), method, params)
	if err != nil {
		return nil, err
	}
	return &Result{corpus: c, run: run}, nil
}

// Len returns the number of reported n-grams.
func (r *Result) Len() int64 { return r.run.Result.Len() }

// Wallclock returns the total elapsed time across all MapReduce jobs.
func (r *Result) Wallclock() time.Duration { return r.run.Wallclock }

// Jobs returns the number of MapReduce jobs the method launched.
func (r *Result) Jobs() int { return r.run.Jobs }

// BytesTransferred returns the bytes moved between map and reduce
// phases over all jobs (the paper's measure b).
func (r *Result) BytesTransferred() int64 { return r.run.BytesTransferred() }

// RecordsTransferred returns the key-value pairs moved between map and
// reduce phases over all jobs (the paper's measure c).
func (r *Result) RecordsTransferred() int64 { return r.run.RecordsTransferred() }

// ShuffleBytes returns the measured shuffle transfer over all jobs:
// the encoded run-format bytes map tasks actually handed to reduce
// tasks, after front-coding and any block codec — the on-the-wire
// counterpart of BytesTransferred's logical byte count.
func (r *Result) ShuffleBytes() int64 { return r.run.ShuffleBytesWritten() }

// Each calls fn for every reported n-gram. Iteration order is
// unspecified. Returning an error from fn stops iteration.
func (r *Result) Each(fn func(NGram) error) error {
	return r.run.Result.EachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
		return fn(r.decode(s, agg))
	})
}

func (r *Result) decode(s sequence.Seq, agg core.Aggregate) NGram {
	ng := NGram{
		IDs:       append([]uint32(nil), s...),
		Frequency: agg.Frequency(),
	}
	if years, ok := core.TimeSeriesCounts(agg); ok {
		ng.Years = years
	}
	if docs, ok := core.DocIndexCounts(agg); ok {
		ng.Documents = docs
	}
	words := make([]string, len(s))
	for i, id := range s {
		if w := r.corpus.Term(id); w != "" {
			words[i] = w
		} else {
			words[i] = "#" + itoa(uint64(id))
		}
	}
	ng.Text = strings.Join(words, " ")
	return ng
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// All collects every reported n-gram. For very large results prefer
// Each.
func (r *Result) All() ([]NGram, error) {
	out := make([]NGram, 0, r.Len())
	err := r.Each(func(ng NGram) error {
		out = append(out, ng)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TopK returns the k most frequent n-grams, most frequent first; ties
// break toward longer n-grams, then lexicographically.
func (r *Result) TopK(k int) ([]NGram, error) {
	all, err := r.All()
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Frequency != all[j].Frequency {
			return all[i].Frequency > all[j].Frequency
		}
		if len(all[i].IDs) != len(all[j].IDs) {
			return len(all[i].IDs) > len(all[j].IDs)
		}
		return all[i].Text < all[j].Text
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k], nil
}

// Longest returns the k longest reported n-grams, longest first; ties
// break toward higher frequency.
func (r *Result) Longest(k int) ([]NGram, error) {
	all, err := r.All()
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool {
		if len(all[i].IDs) != len(all[j].IDs) {
			return len(all[i].IDs) > len(all[j].IDs)
		}
		if all[i].Frequency != all[j].Frequency {
			return all[i].Frequency > all[j].Frequency
		}
		return all[i].Text < all[j].Text
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k], nil
}

// Lookup returns the statistics of the given phrase, if reported.
func (r *Result) Lookup(phrase string) (NGram, bool, error) {
	words := strings.Fields(phrase)
	ids := make(sequence.Seq, len(words))
	for i, w := range words {
		id, ok := r.corpus.TermID(strings.ToLower(w))
		if !ok {
			return NGram{}, false, nil
		}
		ids[i] = id
	}
	var found NGram
	ok := false
	err := r.Each(func(ng NGram) error {
		if !ok && sequence.Equal(sequence.Seq(ng.IDs), ids) {
			found = ng
			ok = true
		}
		return nil
	})
	return found, ok, err
}

// Release frees the result's backing storage. The result must not be
// used afterwards.
func (r *Result) Release() error { return r.run.Result.Release() }
