package ngramstats

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// synthDocs generates a deterministic skewed document stream: sentences
// of zipf-distributed words, so the stream has genuine heavy hitters.
func synthDocs(seed int64, n int) []Document {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.4, 2.0, 399)
	docs := make([]Document, n)
	for i := range docs {
		var sb strings.Builder
		for s := 0; s < 2+rng.Intn(3); s++ {
			for w := 0; w < 4+rng.Intn(6); w++ {
				if w > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "w%d", z.Uint64())
			}
			sb.WriteString(". ")
		}
		docs[i] = Document{Year: 2000 + i%3, Text: sb.String()}
	}
	return docs
}

func sliceDocuments(docs []Document) func(yield func(Document, error) bool) {
	return func(yield func(Document, error) bool) {
		for _, d := range docs {
			if !yield(d, nil) {
				return
			}
		}
	}
}

// TestStreamIngesterOneSidedWithinBound is the satellite estimation-
// error test: on a synthetic corpus, every CMS estimate must be at
// least the exact count, and at least 1−δ of the n-grams must be within
// the stated ε·N bound.
func TestStreamIngesterOneSidedWithinBound(t *testing.T) {
	const maxLen = 3
	docs := synthDocs(11, 120)
	si, err := NewStreamIngester(IngestOptions{
		Epsilon: 0.002, Delta: 0.05, MaxLength: maxLen, TopK: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := si.Ingest(docs...); err != nil {
		t.Fatal(err)
	}
	if si.Docs() != int64(len(docs)) || si.Pending() != int64(len(docs)) {
		t.Fatalf("docs=%d pending=%d, want %d", si.Docs(), si.Pending(), len(docs))
	}

	c, err := FromDocuments(context.Background(), "synth", sliceDocuments(docs), BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Count(context.Background(), c, Options{
		MinFrequency: 1, MaxLength: maxLen, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exact.Release()

	var total, overBound int
	err = exact.Each(func(g NGram) error {
		total++
		ac, ok := si.Estimate(g.Text)
		if !ok {
			return fmt.Errorf("estimate rejected %q", g.Text)
		}
		if ac.Order != g.Length() {
			return fmt.Errorf("%q: order %d, want %d", g.Text, ac.Order, g.Length())
		}
		if ac.Estimate < g.Frequency {
			return fmt.Errorf("%q: estimate %d below exact %d (one-sidedness broken)",
				g.Text, ac.Estimate, g.Frequency)
		}
		if ac.Bound != si.ErrorBound(ac.Order) {
			return fmt.Errorf("%q: bound %d, want %d", g.Text, ac.Bound, si.ErrorBound(ac.Order))
		}
		if ac.Estimate > g.Frequency+ac.Bound {
			overBound++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("exact job produced no n-grams")
	}
	if frac := float64(overBound) / float64(total); frac > 0.05 {
		t.Fatalf("%.4f of %d n-grams exceed the eps*N bound, want <= delta 0.05", frac, total)
	}

	// Sketch N per order equals the exact pipeline's occurrence totals.
	perOrder := make(map[int]int64)
	if err := exact.Each(func(g NGram) error { perOrder[g.Length()] += g.Frequency; return nil }); err != nil {
		t.Fatal(err)
	}
	for order := 1; order <= maxLen; order++ {
		if si.N(order) != perOrder[order] {
			t.Fatalf("order %d: sketch N = %d, exact total = %d", order, si.N(order), perOrder[order])
		}
	}

	// Heavy hitters surface the real top unigram.
	top1, err := exact.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	hh := si.TopK(0)
	if len(hh) == 0 {
		t.Fatal("no heavy hitters tracked")
	}
	found := false
	for _, e := range hh {
		if e.Phrase == top1[0].Text {
			found = true
			if e.Estimate < top1[0].Frequency {
				t.Fatalf("heavy hitter %q estimate %d below exact %d", e.Phrase, e.Estimate, top1[0].Frequency)
			}
		}
	}
	if !found {
		t.Fatalf("top exact unigram %q missing from heavy hitters", top1[0].Text)
	}

	// Unknown words estimate to zero; out-of-range orders are rejected.
	if ac, ok := si.Estimate("neverseen word"); !ok || ac.Estimate != 0 {
		t.Fatalf("unknown-word estimate = %+v, %v", ac, ok)
	}
	if _, ok := si.Estimate("w1 w2 w3 w4"); ok {
		t.Fatal("order above MaxLength accepted")
	}
	if _, ok := si.Estimate("   "); ok {
		t.Fatal("empty phrase accepted")
	}
}

// resultLines renders a Result as deterministic text for byte-level
// comparison.
func resultLines(t *testing.T, r *Result) []byte {
	t.Helper()
	all, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, g := range all {
		fmt.Fprintf(&buf, "%v\t%s\t%d\n", g.IDs, g.Text, g.Frequency)
	}
	return buf.Bytes()
}

// TestReconcileByteIdenticalToBatch is the satellite reconciliation
// test: the exact job run through a Reconcile over the ingested stream
// must equal a pure batch run over the same documents, byte for byte.
func TestReconcileByteIdenticalToBatch(t *testing.T) {
	docs := synthDocs(23, 60)
	si, err := NewStreamIngester(IngestOptions{Epsilon: 0.01, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := si.Ingest(docs...); err != nil {
		t.Fatal(err)
	}

	rc, err := si.BeginReconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cutoff() != len(docs) {
		t.Fatalf("cutoff = %d, want %d", rc.Cutoff(), len(docs))
	}
	if _, err := si.BeginReconcile(); err != ErrReconcileActive {
		t.Fatalf("second BeginReconcile err = %v, want ErrReconcileActive", err)
	}

	opts := Options{MinFrequency: 2, MaxLength: 3, TempDir: t.TempDir()}
	rcCorpus, err := rc.Corpus(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	rcRes, err := Count(context.Background(), rcCorpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rcRes.Release()

	batchCorpus, err := FromDocuments(context.Background(), "live", sliceDocuments(docs), BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batchRes, err := Count(context.Background(), batchCorpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer batchRes.Release()

	got, want := resultLines(t, rcRes), resultLines(t, batchRes)
	if !bytes.Equal(got, want) {
		t.Fatalf("reconcile results differ from pure batch run:\n--- reconcile\n%s--- batch\n%s", got, want)
	}

	rc.Commit()
	if si.Covered() != int64(len(docs)) || si.Pending() != 0 {
		t.Fatalf("after commit: covered=%d pending=%d", si.Covered(), si.Pending())
	}
	// The delta was reset: previously hot keys now estimate from the
	// fresh (empty) delta only.
	if ac, ok := si.Estimate("w2"); !ok || ac.Estimate != 0 {
		t.Fatalf("post-commit delta estimate = %+v, %v", ac, ok)
	}
}

// TestReconcileRotationAndAbort exercises the delta rotation: documents
// ingested during a reconciliation stay queryable, and an abort
// restores the pre-reconcile statistics.
func TestReconcileRotationAndAbort(t *testing.T) {
	si, err := NewStreamIngester(IngestOptions{Epsilon: 0.01, MaxLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := si.Ingest(Document{Text: "alpha beta. alpha beta."}); err != nil {
		t.Fatal(err)
	}
	before, _ := si.Estimate("alpha beta")
	if before.Estimate < 2 {
		t.Fatalf("pre-reconcile estimate = %d, want >= 2", before.Estimate)
	}

	rc, err := si.BeginReconcile()
	if err != nil {
		t.Fatal(err)
	}
	// Mid-reconcile ingest lands in the fresh delta; queries sum both.
	if err := si.Ingest(Document{Text: "alpha beta."}); err != nil {
		t.Fatal(err)
	}
	mid, _ := si.Estimate("alpha beta")
	if mid.Estimate < 3 {
		t.Fatalf("mid-reconcile estimate = %d, want >= 3", mid.Estimate)
	}
	if err := rc.Abort(); err != nil {
		t.Fatal(err)
	}
	after, _ := si.Estimate("alpha beta")
	if after.Estimate < 3 {
		t.Fatalf("post-abort estimate = %d, want >= 3 (drained delta lost)", after.Estimate)
	}
	if si.Covered() != 0 {
		t.Fatalf("abort advanced covered to %d", si.Covered())
	}

	// A snapshot of the delta is writable and non-empty.
	var buf bytes.Buffer
	if n, err := si.WriteSnapshot(&buf); err != nil || n != int64(buf.Len()) || buf.Len() == 0 {
		t.Fatalf("WriteSnapshot = %d, %v (buffered %d)", n, err, buf.Len())
	}
}

// TestStreamIngesterConcurrent hammers Ingest and the query surface
// from many goroutines (run with -race) and then checks no increment
// was lost.
func TestStreamIngesterConcurrent(t *testing.T) {
	si, err := NewStreamIngester(IngestOptions{Epsilon: 0.01, MaxLength: 2, TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 4, 50
	done := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				if err := si.Ingest(Document{Text: fmt.Sprintf("common w%d common.", w)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	go func() {
		for i := 0; i < 200; i++ {
			si.Estimate("common")
			si.TopK(3)
			si.N(1)
		}
		done <- nil
	}()
	for i := 0; i < workers+1; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if si.Docs() != workers*perWorker {
		t.Fatalf("docs = %d, want %d", si.Docs(), workers*perWorker)
	}
	ac, ok := si.Estimate("common")
	if !ok || ac.Estimate < 2*workers*perWorker {
		t.Fatalf("estimate(common) = %d, want >= %d", ac.Estimate, 2*workers*perWorker)
	}
}
