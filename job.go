package ngramstats

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ngramstats/internal/core"
	"ngramstats/internal/extsort"
	"ngramstats/internal/mapreduce"
)

// Job is a handle on a running n-gram computation started with Start:
// it exposes live progress and counters while the underlying MapReduce
// jobs execute, and delivers the result through Wait. A Job is safe for
// concurrent use.
type Job struct {
	cancel context.CancelFunc
	done   chan struct{}
	track  *progressTracker

	res *Result
	err error
}

// JobProgress is a point-in-time snapshot of a running computation.
// Successive snapshots are monotonic: JobsStarted, JobsDone, TasksDone,
// TasksTotal, Records, and ShuffleBytes never decrease.
type JobProgress struct {
	// Phase is the current activity: "starting" before the first task
	// runs, then "map" or "reduce" within the running MapReduce job, and
	// "done" once Wait would return.
	Phase string
	// JobName is the MapReduce job currently running. Methods may launch
	// several jobs (APRIORI's per-length passes, document-split
	// pre-processing, maximality post-filtering); the name identifies
	// which one is active.
	JobName string
	// JobsStarted and JobsDone count the MapReduce jobs launched and
	// completed so far.
	JobsStarted, JobsDone int
	// TasksDone and TasksTotal accumulate map and reduce task
	// completions across every job started so far. TasksTotal grows as
	// new jobs announce their task counts.
	TasksDone, TasksTotal int
	// Records is the number of map-output records emitted so far, live
	// within the running job.
	Records int64
	// ShuffleBytes is the encoded shuffle bytes written so far (the
	// measured transfer counter), live within the running job.
	ShuffleBytes int64
	// Elapsed is the time since Start.
	Elapsed time.Duration
	// Done reports whether the computation has finished — successfully,
	// with an error, or cancelled. Wait returns which.
	Done bool
}

// Start launches the computation of n-gram statistics over the corpus
// and returns immediately with a handle. The computation observes ctx:
// cancelling it (or calling the handle's Cancel) stops the run and
// makes Wait return the context's error. Count is Start followed by
// Wait.
func Start(ctx context.Context, c *Corpus, opts Options) (*Job, error) {
	method, params, err := opts.params()
	if err != nil {
		return nil, err
	}
	if !core.ValidMethod(method) {
		return nil, fmt.Errorf("ngramstats: unknown method %q", opts.Method)
	}
	track := newProgressTracker()
	params.Progress = mapreduce.MultiProgress(track, params.Progress)
	ctx, cancel := context.WithCancel(ctx)
	j := &Job{cancel: cancel, done: make(chan struct{}), track: track}
	go func() {
		defer close(j.done)
		defer cancel()
		run, err := core.Compute(ctx, c.collection(), method, params)
		if err != nil {
			j.err = err
		} else {
			j.res = &Result{corpus: c, run: run, opts: opts}
		}
		track.finish()
	}()
	return j, nil
}

// Count computes n-gram statistics over the corpus, blocking until the
// result is ready. It is Start followed by Wait.
func Count(ctx context.Context, c *Corpus, opts Options) (*Result, error) {
	j, err := Start(ctx, c, opts)
	if err != nil {
		return nil, err
	}
	return j.Wait()
}

// Wait blocks until the computation finishes and returns its result, or
// the first error (including ctx cancellation).
func (j *Job) Wait() (*Result, error) {
	<-j.done
	return j.res, j.err
}

// Cancel stops the computation. Wait returns context.Canceled if the
// run had not already finished. Cancel is idempotent.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the computation finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Progress returns a snapshot of the computation's progress. It may be
// polled at any rate while the job runs.
func (j *Job) Progress() JobProgress { return j.track.snapshot() }

// Counters returns a snapshot of the Hadoop-style counters aggregated
// over every MapReduce job launched so far, including the live counters
// of the currently running job (names like MAP_OUTPUT_RECORDS,
// SHUFFLE_BYTES_WRITTEN — see the Result accessors for the measures the
// paper reports).
func (j *Job) Counters() map[string]int64 { return j.track.counters() }

// progressTracker accumulates mapreduce progress events into the
// monotonic JobProgress snapshots the Job handle serves. It implements
// mapreduce.Progress; events arrive from the compute goroutine and its
// task goroutines, snapshots are read from any goroutine.
type progressTracker struct {
	start time.Time

	mu          sync.Mutex
	phase       string
	jobName     string
	jobsStarted int
	jobsDone    int
	tasksDone   int
	tasksTotal  int
	// Totals of finished jobs; the running job is read live.
	doneRecords int64
	doneShuffle int64
	cur         *mapreduce.Counters
	curIO       *extsort.IOStats
	all         []*mapreduce.Counters
	finished    bool
}

func newProgressTracker() *progressTracker {
	return &progressTracker{start: time.Now(), phase: "starting"}
}

func (t *progressTracker) JobStart(info mapreduce.JobInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jobsStarted++
	t.jobName = info.Name
	t.phase = "starting" // until this job's first PhaseStart
	t.tasksTotal += info.MapTasks + info.ReduceTasks
	t.cur = info.Counters
	t.curIO = info.ShuffleIO
	t.all = append(t.all, info.Counters)
}

func (t *progressTracker) PhaseStart(job, phase string) {
	t.mu.Lock()
	t.phase = phase
	t.mu.Unlock()
}

func (t *progressTracker) TaskDone(job, phase string) {
	t.mu.Lock()
	t.tasksDone++
	t.mu.Unlock()
}

func (t *progressTracker) JobDone(s mapreduce.JobSummary) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jobsDone++
	t.doneRecords += s.MapOutRecords
	t.doneShuffle += s.ShuffleBytesWritten
	t.cur = nil
	t.curIO = nil
}

// finish marks the computation complete (in success and failure alike).
func (t *progressTracker) finish() {
	t.mu.Lock()
	t.finished = true
	t.phase = "done"
	t.mu.Unlock()
}

func (t *progressTracker) snapshot() JobProgress {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := JobProgress{
		Phase:        t.phase,
		JobName:      t.jobName,
		JobsStarted:  t.jobsStarted,
		JobsDone:     t.jobsDone,
		TasksDone:    t.tasksDone,
		TasksTotal:   t.tasksTotal,
		Records:      t.doneRecords,
		ShuffleBytes: t.doneShuffle,
		Elapsed:      time.Since(t.start),
		Done:         t.finished,
	}
	if t.cur != nil {
		p.Records += t.cur.Get(mapreduce.CounterMapOutputRecords)
	}
	if t.curIO != nil {
		p.ShuffleBytes += t.curIO.BytesWritten()
	}
	return p
}

func (t *progressTracker) counters() map[string]int64 {
	t.mu.Lock()
	jobs := append([]*mapreduce.Counters(nil), t.all...)
	t.mu.Unlock()
	agg := mapreduce.NewCounters()
	for _, c := range jobs {
		agg.Merge(c)
	}
	return agg.Snapshot()
}
