package ngramstats

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func roseCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := FromText("rose", []string{
		"a rose is a rose is a rose.",
		"a rose by any other name.",
	}, []int{1913, 1597})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestQuickstartFlow(t *testing.T) {
	c := roseCorpus(t)
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 2,
		MaxLength:    3,
		TempDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()

	top, err := res.TopK(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("TopK = %d entries", len(top))
	}
	// "a", "rose", and "a rose" all have cf 4; ties break longer-first.
	if top[0].Text != "a rose" || top[0].Frequency != 4 {
		t.Fatalf("most frequent = %q (cf %d)", top[0].Text, top[0].Frequency)
	}
	ng, ok, err := res.Lookup("a rose")
	if err != nil || !ok {
		t.Fatalf("Lookup(a rose) = %v, %v", ok, err)
	}
	if ng.Frequency != 4 {
		t.Fatalf("cf(a rose) = %d, want 4", ng.Frequency)
	}
	if ng.Length() != 2 {
		t.Fatalf("Length = %d", ng.Length())
	}
	// "is a rose" occurs twice.
	ng, ok, err = res.Lookup("is a rose")
	if err != nil || !ok || ng.Frequency != 2 {
		t.Fatalf("Lookup(is a rose) = %+v, %v, %v", ng, ok, err)
	}
	// Absent phrase.
	if _, ok, _ := res.Lookup("other rose"); ok {
		t.Fatal("phantom phrase found")
	}
	if _, ok, _ := res.Lookup("notaword"); ok {
		t.Fatal("unknown word matched")
	}
}

func TestAllMethodsViaFacade(t *testing.T) {
	c := roseCorpus(t)
	var baseline map[string]int64
	for _, m := range []Method{MethodNaive, MethodAprioriScan, MethodAprioriIndex, MethodSuffixSigma} {
		res, err := Count(context.Background(), c, Options{
			Method: m, MinFrequency: 2, MaxLength: 4, TempDir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		got := map[string]int64{}
		if err := res.Each(func(ng NGram) error {
			got[ng.Text] = ng.Frequency
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if len(got) != len(baseline) {
			t.Fatalf("%s disagrees: %v vs %v", m, got, baseline)
		}
		for k, v := range baseline {
			if got[k] != v {
				t.Fatalf("%s: cf(%q) = %d, want %d", m, k, got[k], v)
			}
		}
	}
}

func TestMaximalSelection(t *testing.T) {
	c := roseCorpus(t)
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 2, MaxLength: 3, Selection: SelectMaximal, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	all, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	// No reported n-gram may be a subsequence of another reported one.
	for _, a := range all {
		for _, b := range all {
			if a.Text != b.Text && strings.Contains(" "+b.Text+" ", " "+a.Text+" ") {
				t.Fatalf("maximal set contains %q inside %q", a.Text, b.Text)
			}
		}
	}
}

func TestTimeSeriesAggregationFacade(t *testing.T) {
	c := roseCorpus(t)
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 2, MaxLength: 2, Aggregation: TimeSeries, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ng, ok, err := res.Lookup("a rose")
	if err != nil || !ok {
		t.Fatal("lookup failed")
	}
	if ng.Years[1913] != 3 || ng.Years[1597] != 1 {
		t.Fatalf("years = %v", ng.Years)
	}
}

func TestDocumentIndexAggregationFacade(t *testing.T) {
	c := roseCorpus(t)
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 1, MaxLength: 1, Aggregation: DocumentIndex, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ng, ok, err := res.Lookup("rose")
	if err != nil || !ok {
		t.Fatal("lookup failed")
	}
	if ng.Documents[0] != 3 || ng.Documents[1] != 1 {
		t.Fatalf("documents = %v", ng.Documents)
	}
}

func TestSyntheticCorporaFacade(t *testing.T) {
	nyt := SyntheticNYT(60, 1)
	cw := SyntheticCW(60, 2)
	if nyt.Name() != "NYT" || cw.Name() != "CW" {
		t.Fatalf("names = %q, %q", nyt.Name(), cw.Name())
	}
	st := nyt.Stats()
	if st.Documents != 60 || st.TermOccurrences == 0 || st.Sentences == 0 {
		t.Fatalf("stats = %+v", st)
	}
	half := nyt.Sample(0.5, 3)
	if half.Stats().Documents != 30 {
		t.Fatalf("sample docs = %d", half.Stats().Documents)
	}
	// Dictionary round trip through term/id.
	id, ok := nyt.TermID(nyt.Term(0))
	if !ok || id != 0 {
		t.Fatalf("term/id round trip: %d, %v", id, ok)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := roseCorpus(t)
	dir := filepath.Join(t.TempDir(), "corpus")
	if err := c.Save(dir, 2); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load("rose", dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != c.Stats() {
		t.Fatalf("stats mismatch after round trip")
	}
}

func TestLanguageModelFacade(t *testing.T) {
	c, err := FromText("lm", []string{
		"the cat sat on the mat.",
		"the cat ran off the mat.",
		"the dog sat on the rug.",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 1, MaxLength: 3, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewLanguageModel(res, 3)
	if err != nil {
		t.Fatal(err)
	}
	if model.Order() != 3 {
		t.Fatalf("order = %d", model.Order())
	}
	catScore := model.Score([]string{"the"}, "cat")
	rugScore := model.Score([]string{"the"}, "rug")
	if catScore <= rugScore {
		t.Fatalf("S(cat|the)=%f should beat S(rug|the)=%f", catScore, rugScore)
	}
	if model.Score([]string{"the"}, "zebra") != 0 {
		t.Fatal("unknown word should score 0")
	}
	ppl := model.Perplexity([][]string{{"the", "cat", "sat"}})
	if ppl <= 0 {
		t.Fatalf("perplexity = %f", ppl)
	}
	words := model.Generate(rand.New(rand.NewSource(1)), []string{"the"}, 3)
	if len(words) < 2 {
		t.Fatalf("generated %v", words)
	}
}

func TestLongestAndCounters(t *testing.T) {
	c := roseCorpus(t)
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 2, TempDir: t.TempDir(), Combiner: true, DocumentSplits: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	longest, err := res.Longest(1)
	if err != nil || len(longest) != 1 {
		t.Fatal(err)
	}
	// "a rose is a rose" (len 5) occurs... "rose is a rose" twice? The
	// repeated phrase "a rose is a rose" occurs only once; with τ=2 the
	// longest frequent n-gram is "is a rose" or similar of length 3.
	if longest[0].Length() < 2 {
		t.Fatalf("longest = %+v", longest[0])
	}
	if res.BytesTransferred() <= 0 || res.RecordsTransferred() <= 0 {
		t.Fatal("counters empty")
	}
	if res.Jobs() != 3 { // docsplit count + rewrite + suffix-σ
		t.Fatalf("jobs = %d, want 3", res.Jobs())
	}
	if res.Wallclock() <= 0 {
		t.Fatal("no wallclock")
	}
}

func TestFromTextFiles(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.txt")
	p2 := filepath.Join(dir, "b.txt")
	if err := writeFile(p1, "hello world. hello again."); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(p2, "hello world again."); err != nil {
		t.Fatal(err)
	}
	c, err := FromTextFiles("files", []string{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Documents != 2 {
		t.Fatalf("documents = %d", c.Stats().Documents)
	}
	if _, err := FromTextFiles("missing", []string{filepath.Join(dir, "nope.txt")}); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestFromWebText(t *testing.T) {
	c, err := FromWebText("web", []string{
		"Home | About | Contact\nThis is the real content of the page with many words.\nNext » Prev",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.TermID("about"); ok {
		t.Fatal("boilerplate token survived filtering")
	}
	if _, ok := c.TermID("content"); !ok {
		t.Fatal("content token missing")
	}
}

func TestYearsValidation(t *testing.T) {
	if _, err := FromText("bad", []string{"a", "b"}, []int{1999}); err == nil {
		t.Fatal("expected mismatched years error")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
