package ngramstats

import (
	"context"
	"strings"

	"ngramstats/internal/core"
	"ngramstats/internal/sequence"
)

// PhraseIndex is a positional inverted index over all frequent n-grams
// of a corpus — the queryable by-product of the APRIORI-INDEX method
// (Section III-B of the paper). It answers where and how often any
// indexed phrase occurs.
type PhraseIndex struct {
	corpus *Corpus
	index  *core.Index
}

// Occurrence is one location of a phrase.
type Occurrence struct {
	// DocID is the containing document.
	DocID int64
	// Position is the document-global term position (sentences are
	// separated by a gap of one position).
	Position uint32
}

// BuildPhraseIndex indexes every n-gram with at least MinFrequency
// occurrences and at most MaxLength words. Only MinFrequency,
// MaxLength, and the resource options of opts are consulted.
func BuildPhraseIndex(ctx context.Context, c *Corpus, opts Options) (*PhraseIndex, error) {
	_, params, err := opts.params()
	if err != nil {
		return nil, err
	}
	idx, err := core.BuildIndex(ctx, c.collection(), params)
	if err != nil {
		return nil, err
	}
	return &PhraseIndex{corpus: c, index: idx}, nil
}

// Len returns the number of indexed phrases.
func (px *PhraseIndex) Len() int { return px.index.Len() }

// MaxLength returns the longest indexed phrase length.
func (px *PhraseIndex) MaxLength() int { return px.index.MaxLength() }

func (px *PhraseIndex) encode(phrase string) (sequence.Seq, bool) {
	words := strings.Fields(phrase)
	ids := make(sequence.Seq, len(words))
	for i, w := range words {
		id, ok := px.corpus.TermID(strings.ToLower(w))
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	return ids, true
}

// Frequency returns the collection frequency of a phrase, or false if
// the phrase is not indexed (below the frequency threshold, too long,
// or containing unknown words).
func (px *PhraseIndex) Frequency(phrase string) (int64, bool, error) {
	ids, ok := px.encode(phrase)
	if !ok {
		return 0, false, nil
	}
	return px.index.CF(ids)
}

// Locations returns every occurrence of a phrase (nil if not indexed).
func (px *PhraseIndex) Locations(phrase string) ([]Occurrence, error) {
	ids, ok := px.encode(phrase)
	if !ok {
		return nil, nil
	}
	locs, err := px.index.Locations(ids)
	if err != nil {
		return nil, err
	}
	out := make([]Occurrence, len(locs))
	for i, l := range locs {
		out[i] = Occurrence{DocID: l.DocID, Position: l.Position}
	}
	return out, nil
}
