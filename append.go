package ngramstats

// Incremental index maintenance: a saved index becomes the base of an
// LSM chain (internal/lsm), AppendDelta runs the exact computation
// over only the new documents and links the result as a delta
// generation, and CompactIndex merges base + deltas back into a single
// index byte-identical to a from-scratch rebuild over all documents.
// OpenIndex serves either form transparently (a chain through its
// merge-on-read view).

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"ngramstats/internal/core"
	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/extsort"
	"ngramstats/internal/index"
	"ngramstats/internal/lsm"
)

// AppendOptions configures AppendDelta. The zero value uses the same
// defaults as Count and Save.
type AppendOptions struct {
	// Count supplies the computation knobs for the delta job (method,
	// parallelism, execution backend, …). MinFrequency, MaxLength,
	// Selection, and Aggregation are forced to the chain's invariants
	// (τ = 1, the chain's σ, no selection, the chain's aggregation) and
	// any values set here are ignored.
	Count Options
	// Builder configures the delta corpus build.
	Builder BuilderOptions
	// Compress sets the chain's shard compression when the directory is
	// first adopted as a chain; an existing chain keeps its recorded
	// setting and this field is ignored.
	Compress bool
}

// AppendStats reports one completed append.
type AppendStats struct {
	// Docs is the number of documents counted into the delta.
	Docs int64
	// Records is the number of n-gram records in the delta index.
	Records int64
	// ChainDocs is the chain's cumulative document count after the
	// append.
	ChainDocs int64
	// Deltas is the number of delta generations after the append.
	Deltas int
	// Counters snapshots the delta computation's run counters; the
	// MAP_INPUT_RECORDS counter shows the append processed only the new
	// documents.
	Counters map[string]int64
}

// AppendDelta extends the saved index at dir with new documents
// without recomputing anything over the old ones: the exact job runs
// over just docs (cost O(new documents)) and its result is linked as a
// delta generation. On the first append the plain index is adopted in
// place as the chain's base — it must have been computed with τ = 1
// and no maximal/closed selection, the invariants under which
// per-generation counts merge losslessly.
//
// Document identifiers continue the chain's ordinals: a zero-ID
// document takes the position a full rebuild over all documents would
// have assigned it. After the append, OpenIndex on dir answers every
// query exactly as an index rebuilt from scratch over all documents
// would (the golden-equivalence property; see CompactIndex for the
// byte-level form).
//
// Appends and compactions assume a single writer per chain; concurrent
// readers (including ngramsd serving the directory) need no
// coordination and pick the delta up on their next reload.
func AppendDelta(ctx context.Context, dir string, docs []Document, opts AppendOptions) (*AppendStats, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("ngramstats: append to %s: no documents", dir)
	}
	var man *lsm.Manifest
	var err error
	if lsm.Exists(dir) {
		man, err = lsm.ReadManifest(dir)
	} else {
		man, err = lsm.Adopt(dir, opts.Compress)
	}
	if err != nil {
		return nil, err
	}
	lsm.SweepOrphans(dir, man)

	// Seed the delta's dictionary from the newest generation: inherited
	// identifiers stay stable (encoded keys remain comparable across
	// generations) and frequencies continue cumulatively.
	newest := man.Base.Dir
	if n := len(man.Deltas); n > 0 {
		newest = man.Deltas[n-1].Dir
	}
	seed, err := index.OpenDictionary(filepath.Join(dir, newest))
	if err != nil {
		return nil, err
	}

	b := corpus.NewSeededBuilder(man.Corpus, corpus.BuilderOptions{
		MemoryBudget: opts.Builder.MemoryBudget,
		TempDir:      opts.Builder.TempDir,
	}, seed)
	sawExplicit, sawAuto := false, false
	for i, d := range docs {
		if err := ctx.Err(); err != nil {
			b.Discard()
			return nil, err
		}
		id := d.ID
		if id == 0 {
			if sawExplicit {
				b.Discard()
				return nil, fmt.Errorf("ngramstats: append document %d has ID 0 after explicitly assigned IDs; assign every ID (non-zero) or none", i)
			}
			sawAuto = true
			// The ordinal a full rebuild over all documents would assign.
			id = man.Docs + int64(i)
		} else {
			if sawAuto {
				b.Discard()
				return nil, fmt.Errorf("ngramstats: append document with explicit ID %d after auto-assigned IDs; assign every ID (non-zero) or none", id)
			}
			sawExplicit = true
		}
		if err := b.Add(id, d.Year, d.Text, d.Web); err != nil {
			b.Discard()
			return nil, err
		}
	}
	col, err := b.Finish()
	if err != nil {
		return nil, err
	}

	copts := opts.Count
	copts.MinFrequency = 1
	copts.MaxLength = man.MaxLength
	copts.Selection = SelectAll
	copts.Aggregation = Aggregation(man.Kind)
	res, err := Count(ctx, &Corpus{col: col}, copts)
	if err != nil {
		return nil, err
	}
	defer res.Release()

	// Deltas carry no precomputed top records: a merged top-k cannot be
	// assembled from per-generation tops anyway (a gram just below every
	// generation's cutoff may sum into the global top), so views always
	// take the scanning fallback and the next compaction rebuilds the
	// precomputed file.
	deltaDir := man.NextDeltaDir()
	err = res.SaveWith(filepath.Join(dir, deltaDir), SaveOptions{
		TopDepth: -1,
		Compress: man.Compress,
		TempDir:  copts.TempDir,
	})
	if err != nil {
		return nil, err
	}
	gen := lsm.GenInfo{Dir: deltaDir, Records: res.Len(), Docs: int64(len(docs))}
	if err := lsm.AppendGen(dir, man, gen); err != nil {
		return nil, err
	}
	return &AppendStats{
		Docs:      gen.Docs,
		Records:   gen.Records,
		ChainDocs: man.Docs,
		Deltas:    len(man.Deltas),
		Counters:  res.run.Counters.Snapshot(),
	}, nil
}

// CompactOptions configures CompactIndex. The zero value reproduces
// Save's defaults, which is what makes the compacted base byte-
// identical to a full rebuild.
type CompactOptions struct {
	// Shards overrides the shard count; 0 sizes automatically exactly
	// as Save does (~128k records per shard, at most 32) — leave it 0
	// for rebuild equivalence.
	Shards int
	// TopDepth is the precomputed top-record depth of the new base; 0
	// selects Save's default (1024), negative stores none.
	TopDepth int
	// TempDir is the scratch directory for the merge's external sort.
	TempDir string
	// CacheBlocks bounds each generation's block cache during the
	// merge.
	CacheBlocks int
}

// CompactStats reports one compaction.
type CompactStats struct {
	// Compacted is false when there was nothing to do (a plain index,
	// or a chain with no deltas) — a successful no-op, so periodic
	// policy loops can call CompactIndex unconditionally.
	Compacted bool
	// Generations is the number of generations merged.
	Generations int
	// Records is the record count of the new base.
	Records int64
	// Wallclock is the elapsed compaction time.
	Wallclock time.Duration
}

// CompactIndex merges the chain at dir — base plus all delta
// generations — into a single new base index and atomically swaps the
// chain manifest to it. The new base is byte-identical (dictionary,
// shard files, precomputed top records) to what a from-scratch rebuild
// over all the chain's documents would save: the generations' sorted
// shards stream through one merge tree, per-key aggregate cells fold
// exactly as the job's reducer would, keys translate into the
// canonical frequency-ranked dictionary, and the records are re-sorted
// and sharded under Save's policy.
//
// The swap is crash-safe (the chain manifest rename is the sole commit
// point; a crash leaves the previous chain intact and queryable) and
// invisible to readers: open views keep serving the old generations
// through their file descriptors, and the next reload sees the
// compacted chain.
func CompactIndex(dir string, opts CompactOptions) (*CompactStats, error) {
	start := time.Now()
	if !lsm.Exists(dir) {
		return &CompactStats{}, nil
	}
	peek, err := lsm.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if len(peek.Deltas) == 0 {
		return &CompactStats{}, nil
	}
	lsm.SweepOrphans(dir, peek)

	v, err := lsm.OpenChain(dir, lsm.Options{CacheBlocks: opts.CacheBlocks, TempDir: opts.TempDir})
	if err != nil {
		return nil, err
	}
	defer v.Close()
	prev := v.Manifest()
	kind := core.AggregationKind(v.Kind())
	hadFlatBase := prev.Base.Dir == "."

	// One merged pass over every generation, folding equal keys and
	// translating into the canonical identifier space; the external
	// sorter restores canonical key order (chain order differs because
	// identifiers were assigned incrementally).
	sorter := extsort.NewSorter(extsort.Options{TempDir: opts.TempDir})
	defer sorter.Discard()
	var keyBuf []byte
	err = v.ScanChain(nil, nil, func(chainKey, value []byte) error {
		keyBuf, err = v.AppendCanonicalKey(keyBuf, chainKey)
		if err != nil {
			return err
		}
		return sorter.Add(keyBuf, value)
	})
	if err != nil {
		return nil, fmt.Errorf("ngramstats: compact %s: %w", dir, err)
	}
	total := int64(sorter.Len())

	shards := opts.Shards
	if shards <= 0 {
		shards = int((total + (128 << 10) - 1) / (128 << 10))
		if shards < 1 {
			shards = 1
		}
		if shards > 32 {
			shards = 32
		}
	}
	topDepth := opts.TopDepth
	if topDepth == 0 {
		topDepth = defaultTopDepth
	}
	if int64(topDepth) > total {
		topDepth = int(total)
	}
	codec := extsort.CodecRaw
	if prev.Compress {
		codec = extsort.CodecFlate
	}

	baseDir := prev.NextBaseDir()
	w, err := index.NewWriter(filepath.Join(dir, baseDir), index.WriterOptions{
		Corpus:       prev.Corpus,
		Kind:         prev.Kind,
		Records:      total,
		Shards:       shards,
		Codec:        codec,
		Counters:     v.Counters(),
		Docs:         prev.Docs,
		MaxLength:    prev.MaxLength,
		MinFrequency: 1,
		Selection:    int(SelectAll),
	})
	if err != nil {
		return nil, err
	}
	if err := w.SetDictionary(v.Dictionary().Save); err != nil {
		w.Abort()
		return nil, err
	}

	it, err := sorter.Sort()
	if err != nil {
		w.Abort()
		return nil, fmt.Errorf("ngramstats: compact %s: %w", dir, err)
	}
	defer it.Close()
	rv := resolver{term: v.Dictionary().Term}
	top := boundedTop{k: topDepth, better: rv.topKBetter}
	for it.Next() {
		if err := w.Append(it.Key(), it.Value()); err != nil {
			w.Abort()
			return nil, err
		}
		if topDepth > 0 {
			s, err := encoding.DecodeSeq(it.Key())
			if err != nil {
				w.Abort()
				return nil, err
			}
			agg, err := core.DecodeAggregate(kind, it.Value())
			if err != nil {
				w.Abort()
				return nil, err
			}
			top.offer(rawNGram{seq: s, agg: agg, cf: agg.Frequency()})
		}
	}
	if err := it.Err(); err != nil {
		w.Abort()
		return nil, fmt.Errorf("ngramstats: compact %s: %w", dir, err)
	}
	if topDepth > 0 {
		entries := top.heap
		sort.Slice(entries, func(i, j int) bool { return rv.topKBetter(entries[i], entries[j]) })
		for _, e := range entries {
			if err := w.AppendTop(encoding.EncodeSeq(e.seq), e.agg.Encode()); err != nil {
				w.Abort()
				return nil, err
			}
		}
	}
	if err := w.Commit(); err != nil {
		return nil, err
	}

	if _, err := lsm.SwapBase(dir, &prev, lsm.GenInfo{Dir: baseDir, Records: total, Docs: prev.Docs}); err != nil {
		return nil, err
	}
	if hadFlatBase {
		lsm.RemoveFlatBase(dir)
	}
	return &CompactStats{
		Compacted:   true,
		Generations: v.Generations(),
		Records:     total,
		Wallclock:   time.Since(start),
	}, nil
}
