package ngramstats

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// saveTestCorpus returns a small deterministic corpus with repeated
// phrases at several frequencies and publication years.
func saveTestCorpus(t *testing.T) *Corpus {
	t.Helper()
	docs := []string{
		"the quick brown fox jumps over the lazy dog. the quick brown fox returns.",
		"a quick brown fox is not a lazy dog. the dog sleeps.",
		"the quick brown fox jumps over the lazy dog again and again.",
		"lazy dogs sleep. quick foxes jump. the quick brown fox jumps.",
		"to be or not to be. to be or not to be. that is the question.",
	}
	years := []int{1999, 2001, 2001, 2004, 2007}
	c, err := FromText("persist-test", docs, years)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// ngramKey gives a canonical map key for set comparison.
func ngramKey(ng NGram) string {
	return fmt.Sprint(ng.IDs)
}

// collect gathers an NGrams iterator into a map keyed by ID sequence.
func collect(t *testing.T, seq func(yield func(NGram, error) bool)) map[string]NGram {
	t.Helper()
	out := make(map[string]NGram)
	for ng, err := range seq {
		if err != nil {
			t.Fatalf("NGrams yielded error: %v", err)
		}
		if _, dup := out[ngramKey(ng)]; dup {
			t.Fatalf("duplicate n-gram %q", ng.Text)
		}
		out[ngramKey(ng)] = ng
	}
	return out
}

// TestSaveOpenGolden is the reopen-equality golden test: an index
// written by Save and reopened by OpenIndex must answer NGrams, TopK,
// Longest, and Lookup byte-identically to the live Result, across all
// aggregation kinds and a multi-shard layout.
func TestSaveOpenGolden(t *testing.T) {
	for _, agg := range []Aggregation{Counts, TimeSeries, DocumentIndex} {
		t.Run(fmt.Sprintf("agg=%d", agg), func(t *testing.T) {
			c := saveTestCorpus(t)
			res, err := Count(context.Background(), c, Options{
				MinFrequency: 2, MaxLength: 5, Aggregation: agg, TempDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer res.Release()
			if res.Len() == 0 {
				t.Fatal("empty result would make the test vacuous")
			}

			dir := filepath.Join(t.TempDir(), "idx")
			// Multiple shards and a small top depth exercise both the
			// precomputed and the fallback TopK paths.
			if err := res.SaveWith(dir, SaveOptions{Shards: 3, TopDepth: 5}); err != nil {
				t.Fatalf("Save: %v", err)
			}
			ix, err := OpenIndex(dir)
			if err != nil {
				t.Fatalf("OpenIndex: %v", err)
			}
			defer ix.Close()

			if ix.Len() != res.Len() {
				t.Fatalf("Len: index %d, result %d", ix.Len(), res.Len())
			}
			if ix.Corpus() != "persist-test" {
				t.Fatalf("Corpus = %q", ix.Corpus())
			}
			if ix.Shards() != 3 {
				t.Fatalf("Shards = %d, want 3", ix.Shards())
			}

			// NGrams: identical sets, identical decoded statistics.
			want := collect(t, res.NGrams())
			got := collect(t, ix.NGrams())
			if len(got) != len(want) {
				t.Fatalf("NGrams: %d from index, %d from result", len(got), len(want))
			}
			for k, w := range want {
				g, ok := got[k]
				if !ok {
					t.Fatalf("index is missing %q", w.Text)
				}
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("NGram mismatch for %q:\nindex:  %+v\nresult: %+v", w.Text, g, w)
				}
			}

			// TopK at every depth: below, at, and beyond the stored top
			// depth, and beyond the result size.
			for _, k := range []int{0, 1, 3, 5, 6, 10, int(res.Len()), int(res.Len()) + 7} {
				rw, err := res.TopK(k)
				if err != nil {
					t.Fatal(err)
				}
				gw, err := ix.TopK(k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gw, rw) {
					t.Fatalf("TopK(%d) mismatch:\nindex:  %v\nresult: %v", k, texts(gw), texts(rw))
				}
			}
			for _, k := range []int{1, 4, int(res.Len())} {
				rw, err := res.Longest(k)
				if err != nil {
					t.Fatal(err)
				}
				gw, err := ix.Longest(k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gw, rw) {
					t.Fatalf("Longest(%d) mismatch", k)
				}
			}

			// Lookup: every reported phrase answers identically, and so
			// do misses (absent phrase, unknown word).
			phrases := make([]string, 0, len(want))
			for _, w := range want {
				phrases = append(phrases, w.Text)
			}
			sort.Strings(phrases)
			phrases = append(phrases, "the the the", "xylophone quick", "")
			for _, p := range phrases {
				rg, rok, err := res.Lookup(p)
				if err != nil {
					t.Fatal(err)
				}
				gg, gok, err := ix.Lookup(p)
				if err != nil {
					t.Fatal(err)
				}
				if rok != gok || !reflect.DeepEqual(gg, rg) {
					t.Fatalf("Lookup(%q): index (%+v,%v) vs result (%+v,%v)", p, gg, gok, rg, rok)
				}
			}
		})
	}
}

func texts(ngs []NGram) []string {
	out := make([]string, len(ngs))
	for i, ng := range ngs {
		out[i] = fmt.Sprintf("%s:%d", ng.Text, ng.Frequency)
	}
	return out
}

// TestIndexPrefix pins the prefix-scan semantics: every indexed
// n-gram extending the phrase, in ascending encoded-key order, bounded
// by limit.
func TestIndexPrefix(t *testing.T) {
	c := saveTestCorpus(t)
	res, err := Count(context.Background(), c, Options{MinFrequency: 2, MaxLength: 5, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := res.SaveWith(dir, SaveOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// Oracle: filter the full result by word-prefix.
	wantCount := 0
	for ng, err := range res.NGrams() {
		if err != nil {
			t.Fatal(err)
		}
		if ng.Text == "quick brown fox" || strings.HasPrefix(ng.Text, "quick brown fox ") {
			wantCount++
		}
	}
	if wantCount < 2 {
		t.Fatalf("oracle found only %d extensions; corpus too small for the test", wantCount)
	}

	got, err := ix.Prefix("quick brown fox", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != wantCount {
		t.Fatalf("Prefix returned %d n-grams, oracle says %d", len(got), wantCount)
	}
	for _, ng := range got {
		if ng.Text != "quick brown fox" && !strings.HasPrefix(ng.Text, "quick brown fox ") {
			t.Fatalf("Prefix returned non-extension %q", ng.Text)
		}
	}
	// The phrase itself is included and IDs are genuinely prefixed.
	for _, ng := range got {
		if len(ng.IDs) < 3 {
			t.Fatalf("extension %q shorter than the prefix", ng.Text)
		}
	}

	// Limit caps the answer.
	capped, err := ix.Prefix("quick brown fox", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 {
		t.Fatalf("Prefix with limit 1 returned %d", len(capped))
	}
	// Unknown words cannot be indexed: empty answer, no error.
	if ngs, err := ix.Prefix("xylophone", 0); err != nil || len(ngs) != 0 {
		t.Fatalf("Prefix(unknown) = %v, %v", ngs, err)
	}

	// A fresh phrase lookup after scans still points into valid cache
	// memory and repeated lookups hit the cache.
	h0, _ := ix.CacheStats()
	for i := 0; i < 20; i++ {
		if _, ok, err := ix.Lookup("lazy dog"); err != nil || !ok {
			t.Fatalf("Lookup(lazy dog): ok=%v err=%v", ok, err)
		}
	}
	h1, _ := ix.CacheStats()
	if h1 <= h0 {
		t.Fatalf("block cache saw no hits across repeated lookups (%d -> %d)", h0, h1)
	}
}

// TestSaveRefusesOverwrite pins that Save never clobbers an existing
// index.
func TestSaveRefusesOverwrite(t *testing.T) {
	c := saveTestCorpus(t)
	res, err := Count(context.Background(), c, Options{MinFrequency: 2, MaxLength: 3, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := res.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := res.Save(dir); err == nil {
		t.Fatal("second Save into the same directory must fail")
	}
}
