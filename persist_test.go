package ngramstats

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// saveTestCorpus returns a small deterministic corpus with repeated
// phrases at several frequencies and publication years.
func saveTestCorpus(t *testing.T) *Corpus {
	t.Helper()
	docs := []string{
		"the quick brown fox jumps over the lazy dog. the quick brown fox returns.",
		"a quick brown fox is not a lazy dog. the dog sleeps.",
		"the quick brown fox jumps over the lazy dog again and again.",
		"lazy dogs sleep. quick foxes jump. the quick brown fox jumps.",
		"to be or not to be. to be or not to be. that is the question.",
	}
	years := []int{1999, 2001, 2001, 2004, 2007}
	c, err := FromText("persist-test", docs, years)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// ngramKey gives a canonical map key for set comparison.
func ngramKey(ng NGram) string {
	return fmt.Sprint(ng.IDs)
}

// collect gathers an NGrams iterator into a map keyed by ID sequence.
func collect(t *testing.T, seq func(yield func(NGram, error) bool)) map[string]NGram {
	t.Helper()
	out := make(map[string]NGram)
	for ng, err := range seq {
		if err != nil {
			t.Fatalf("NGrams yielded error: %v", err)
		}
		if _, dup := out[ngramKey(ng)]; dup {
			t.Fatalf("duplicate n-gram %q", ng.Text)
		}
		out[ngramKey(ng)] = ng
	}
	return out
}

// TestSaveOpenGolden is the reopen-equality golden test: an index
// written by Save and reopened by OpenIndex must answer NGrams, TopK,
// Longest, and Lookup byte-identically to the live Result, across all
// aggregation kinds and a multi-shard layout.
func TestSaveOpenGolden(t *testing.T) {
	for _, agg := range []Aggregation{Counts, TimeSeries, DocumentIndex} {
		t.Run(fmt.Sprintf("agg=%d", agg), func(t *testing.T) {
			c := saveTestCorpus(t)
			res, err := Count(context.Background(), c, Options{
				MinFrequency: 2, MaxLength: 5, Aggregation: agg, TempDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer res.Release()
			if res.Len() == 0 {
				t.Fatal("empty result would make the test vacuous")
			}

			dir := filepath.Join(t.TempDir(), "idx")
			// Multiple shards and a small top depth exercise both the
			// precomputed and the fallback TopK paths.
			if err := res.SaveWith(dir, SaveOptions{Shards: 3, TopDepth: 5}); err != nil {
				t.Fatalf("Save: %v", err)
			}
			ix, err := OpenIndex(dir)
			if err != nil {
				t.Fatalf("OpenIndex: %v", err)
			}
			defer ix.Close()

			if ix.Len() != res.Len() {
				t.Fatalf("Len: index %d, result %d", ix.Len(), res.Len())
			}
			if ix.Corpus() != "persist-test" {
				t.Fatalf("Corpus = %q", ix.Corpus())
			}
			if ix.Shards() != 3 {
				t.Fatalf("Shards = %d, want 3", ix.Shards())
			}

			// NGrams: identical sets, identical decoded statistics.
			want := collect(t, res.NGrams())
			got := collect(t, ix.NGrams())
			if len(got) != len(want) {
				t.Fatalf("NGrams: %d from index, %d from result", len(got), len(want))
			}
			for k, w := range want {
				g, ok := got[k]
				if !ok {
					t.Fatalf("index is missing %q", w.Text)
				}
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("NGram mismatch for %q:\nindex:  %+v\nresult: %+v", w.Text, g, w)
				}
			}

			// TopK at every depth: below, at, and beyond the stored top
			// depth, and beyond the result size.
			for _, k := range []int{0, 1, 3, 5, 6, 10, int(res.Len()), int(res.Len()) + 7} {
				rw, err := res.TopK(k)
				if err != nil {
					t.Fatal(err)
				}
				gw, err := ix.TopK(k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gw, rw) {
					t.Fatalf("TopK(%d) mismatch:\nindex:  %v\nresult: %v", k, texts(gw), texts(rw))
				}
			}
			for _, k := range []int{1, 4, int(res.Len())} {
				rw, err := res.Longest(k)
				if err != nil {
					t.Fatal(err)
				}
				gw, err := ix.Longest(k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gw, rw) {
					t.Fatalf("Longest(%d) mismatch", k)
				}
			}

			// Lookup: every reported phrase answers identically, and so
			// do misses (absent phrase, unknown word).
			phrases := make([]string, 0, len(want))
			for _, w := range want {
				phrases = append(phrases, w.Text)
			}
			sort.Strings(phrases)
			phrases = append(phrases, "the the the", "xylophone quick", "")
			for _, p := range phrases {
				rg, rok, err := res.Lookup(p)
				if err != nil {
					t.Fatal(err)
				}
				gg, gok, err := ix.Lookup(p)
				if err != nil {
					t.Fatal(err)
				}
				if rok != gok || !reflect.DeepEqual(gg, rg) {
					t.Fatalf("Lookup(%q): index (%+v,%v) vs result (%+v,%v)", p, gg, gok, rg, rok)
				}
			}
		})
	}
}

func texts(ngs []NGram) []string {
	out := make([]string, len(ngs))
	for i, ng := range ngs {
		out[i] = fmt.Sprintf("%s:%d", ng.Text, ng.Frequency)
	}
	return out
}

// TestIndexPrefix pins the prefix-scan semantics: every indexed
// n-gram extending the phrase, in ascending encoded-key order, bounded
// by limit.
func TestIndexPrefix(t *testing.T) {
	c := saveTestCorpus(t)
	res, err := Count(context.Background(), c, Options{MinFrequency: 2, MaxLength: 5, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := res.SaveWith(dir, SaveOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// Oracle: filter the full result by word-prefix.
	wantCount := 0
	for ng, err := range res.NGrams() {
		if err != nil {
			t.Fatal(err)
		}
		if ng.Text == "quick brown fox" || strings.HasPrefix(ng.Text, "quick brown fox ") {
			wantCount++
		}
	}
	if wantCount < 2 {
		t.Fatalf("oracle found only %d extensions; corpus too small for the test", wantCount)
	}

	got, err := ix.Prefix("quick brown fox", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != wantCount {
		t.Fatalf("Prefix returned %d n-grams, oracle says %d", len(got), wantCount)
	}
	for _, ng := range got {
		if ng.Text != "quick brown fox" && !strings.HasPrefix(ng.Text, "quick brown fox ") {
			t.Fatalf("Prefix returned non-extension %q", ng.Text)
		}
	}
	// The phrase itself is included and IDs are genuinely prefixed.
	for _, ng := range got {
		if len(ng.IDs) < 3 {
			t.Fatalf("extension %q shorter than the prefix", ng.Text)
		}
	}

	// Limit caps the answer.
	capped, err := ix.Prefix("quick brown fox", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 {
		t.Fatalf("Prefix with limit 1 returned %d", len(capped))
	}
	// Unknown words cannot be indexed: empty answer, no error.
	if ngs, err := ix.Prefix("xylophone", 0); err != nil || len(ngs) != 0 {
		t.Fatalf("Prefix(unknown) = %v, %v", ngs, err)
	}

	// A fresh phrase lookup after scans still points into valid cache
	// memory and repeated lookups hit the cache.
	h0, _ := ix.CacheStats()
	for i := 0; i < 20; i++ {
		if _, ok, err := ix.Lookup("lazy dog"); err != nil || !ok {
			t.Fatalf("Lookup(lazy dog): ok=%v err=%v", ok, err)
		}
	}
	h1, _ := ix.CacheStats()
	if h1 <= h0 {
		t.Fatalf("block cache saw no hits across repeated lookups (%d -> %d)", h0, h1)
	}
}

// TestSaveRefusesOverwrite pins that Save never clobbers an existing
// index.
func TestSaveRefusesOverwrite(t *testing.T) {
	c := saveTestCorpus(t)
	res, err := Count(context.Background(), c, Options{MinFrequency: 2, MaxLength: 3, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := res.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := res.Save(dir); err == nil {
		t.Fatal("second Save into the same directory must fail")
	}
}

// TestSaveReplaceSwapsGenerations pins the hot-swap contract of
// SaveOptions.Replace: an Index opened before the rewrite keeps
// answering from its generation, a fresh OpenIndex sees the new one,
// and closing the old handle fails only later queries.
func TestSaveReplaceSwapsGenerations(t *testing.T) {
	c := saveTestCorpus(t)
	ctx := context.Background()
	res1, err := Count(ctx, c, Options{MinFrequency: 2, MaxLength: 3, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer res1.Release()
	res2, err := Count(ctx, c, Options{MinFrequency: 4, MaxLength: 2, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Release()
	if res1.Len() == res2.Len() {
		t.Fatalf("fixture results must differ (both %d records)", res1.Len())
	}
	// A phrase frequent enough for res1 but filtered out of res2.
	var onlyOld string
	for ng, err := range res1.NGrams() {
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := res2.Lookup(ng.Text); err != nil {
			t.Fatal(err)
		} else if !ok {
			onlyOld = ng.Text
			break
		}
	}
	if onlyOld == "" {
		t.Fatal("no n-gram distinguishes the two results")
	}

	dir := filepath.Join(t.TempDir(), "idx")
	if err := res1.Save(dir); err != nil {
		t.Fatal(err)
	}
	ix1, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix1.Close()

	if err := res2.SaveWith(dir, SaveOptions{Replace: true}); err != nil {
		t.Fatalf("SaveWith(Replace): %v", err)
	}

	// The pre-replace handle still serves the old generation.
	if _, ok, err := ix1.Lookup(onlyOld); err != nil || !ok {
		t.Fatalf("old handle after replace: Lookup(%q) = %v, %v (want found)", onlyOld, ok, err)
	}
	if ix1.Len() != res1.Len() {
		t.Fatalf("old handle reports %d records, want %d", ix1.Len(), res1.Len())
	}
	// A fresh open serves the replacement.
	ix2, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Len() != res2.Len() {
		t.Fatalf("new handle reports %d records, want %d", ix2.Len(), res2.Len())
	}
	if _, ok, err := ix2.Lookup(onlyOld); err != nil || ok {
		t.Fatalf("new handle: Lookup(%q) = %v, %v (want miss)", onlyOld, ok, err)
	}
	if !ix2.ManifestTime().After(ix1.ManifestTime()) {
		t.Fatalf("manifest time did not advance across replace")
	}

	// Close-and-drain: the old handle refuses new queries after Close.
	if err := ix1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix1.Lookup(onlyOld); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("post-Close Lookup: err = %v, want ErrIndexClosed", err)
	}
}

// TestLanguageModelFromIndexEquivalence pins that a model trained from
// a persisted index answers identically to one trained from the live
// Result the index was saved from — the serving-path guarantee behind
// ngramsd -lm.
func TestLanguageModelFromIndexEquivalence(t *testing.T) {
	c := saveTestCorpus(t)
	res, err := Count(context.Background(), c, Options{MinFrequency: 1, MaxLength: 3, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := res.Save(dir); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}

	fromRes, err := NewLanguageModel(res, 3)
	if err != nil {
		t.Fatal(err)
	}
	fromIx, err := NewLanguageModelFromIndex(ix, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The index was read only during construction; the model outlives it.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Every indexed n-gram scores identically under both models.
	for ng, err := range res.NGrams() {
		if err != nil {
			t.Fatal(err)
		}
		words := strings.Fields(ng.Text)
		ctxWords, last := words[:len(words)-1], words[len(words)-1]
		a, b := fromRes.Score(ctxWords, last), fromIx.Score(ctxWords, last)
		if a != b {
			t.Fatalf("Score(%v | %v): result model %v, index model %v", last, ctxWords, a, b)
		}
	}
	// Predictions and Katz log-probabilities agree too.
	pa, pb := fromRes.Predict([]string{"the"}, 5), fromIx.Predict([]string{"the"}, 5)
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("Predict diverged:\n result %+v\n  index %+v", pa, pb)
	}
	if len(pa) == 0 {
		t.Fatal("no predictions after \"the\"")
	}
	for _, phrase := range [][]string{
		{"the", "quick", "brown", "fox"},
		{"to", "be", "or", "not", "to", "be"},
		{"the", "zzz-unknown", "dog"},
	} {
		la, lb := fromRes.LogProb(phrase), fromIx.LogProb(phrase)
		if la != lb {
			t.Fatalf("LogProb(%v): result model %v, index model %v", phrase, la, lb)
		}
		if la >= 0 || math.IsNaN(la) || math.IsInf(la, 0) {
			t.Fatalf("LogProb(%v) = %v, want a finite negative value", phrase, la)
		}
	}
	// Predict ranks by stupid-backoff score, best first.
	for i := 1; i < len(pa); i++ {
		if pa[i].Score > pa[i-1].Score {
			t.Fatalf("predictions out of order: %+v", pa)
		}
	}
}
