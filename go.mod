module ngramstats

go 1.24
