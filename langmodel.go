package ngramstats

import (
	"math/rand"
	"strings"

	"ngramstats/internal/lm"
	"ngramstats/internal/sequence"
)

// LanguageModel is a stupid-backoff n-gram language model (Brants et
// al., EMNLP 2007) trained from computed n-gram statistics — the
// paper's language-model use case.
type LanguageModel struct {
	corpus *Corpus
	model  *lm.Model
}

// NewLanguageModel trains a model of the given order from a result.
// The result should have been computed with MaxLength ≥ order and a
// low MinFrequency.
func NewLanguageModel(r *Result, order int) (*LanguageModel, error) {
	m, err := lm.FromResult(r.run.Result, order, lm.DefaultAlpha)
	if err != nil {
		return nil, err
	}
	return &LanguageModel{corpus: r.corpus, model: m}, nil
}

// Order returns the model's maximum n-gram length.
func (l *LanguageModel) Order() int { return l.model.Order() }

func (l *LanguageModel) encode(words []string) (sequence.Seq, bool) {
	ids := make(sequence.Seq, len(words))
	for i, w := range words {
		id, ok := l.corpus.TermID(strings.ToLower(w))
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	return ids, true
}

// Score returns the stupid-backoff score of a word given its context
// words. Unknown context words truncate the context; an unknown word
// scores near zero.
func (l *LanguageModel) Score(context []string, word string) float64 {
	w, ok := l.corpus.TermID(strings.ToLower(word))
	if !ok {
		return 0
	}
	ctx, ok := l.encode(context)
	if !ok {
		ctx = nil
	}
	return l.model.Score(ctx, w)
}

// Perplexity evaluates the model on test sentences (each a slice of
// words); lower is better. Sentences with unknown words are skipped.
func (l *LanguageModel) Perplexity(sentences [][]string) float64 {
	var encoded []sequence.Seq
	for _, s := range sentences {
		if ids, ok := l.encode(s); ok {
			encoded = append(encoded, ids)
		}
	}
	return l.model.Perplexity(encoded)
}

// Generate samples a continuation of the prefix words, returning the
// full generated word sequence.
func (l *LanguageModel) Generate(rng *rand.Rand, prefix []string, n int) []string {
	ids, ok := l.encode(prefix)
	if !ok {
		ids = nil
	}
	out := l.model.Generate(rng, ids, n)
	words := make([]string, len(out))
	for i, id := range out {
		words[i] = l.corpus.Term(id)
	}
	return words
}
