package ngramstats

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"ngramstats/internal/core"
	"ngramstats/internal/lm"
	"ngramstats/internal/sequence"
)

// LanguageModel is an n-gram language model trained from computed
// n-gram statistics — the paper's language-model use case. Scoring
// offers two schemes over the same counts: stupid backoff (Brants et
// al., EMNLP 2007; Score, Predict, Generate) and Katz back-off with
// Good-Turing discounting (Katz 1987, the paper's reference [24];
// LogProb), which yields true probabilities.
//
// A model can be trained from a live Result (NewLanguageModel) or from
// a persisted index (NewLanguageModelFromIndex) — the serving path: a
// daemon reopens a saved index and answers phrase-probability and
// next-word queries without rerunning the computation.
//
// All methods are safe for concurrent use. Score, Predict, Generate,
// and Perplexity are lock-free; LogProb serializes internally on the
// Katz model's memo caches.
type LanguageModel struct {
	// termID and term bridge words to the term identifiers of whichever
	// vocabulary the model was trained against (corpus or persisted
	// dictionary).
	termID func(word string) (sequence.Term, bool)
	term   func(id sequence.Term) string
	model  *lm.Model

	katzOnce sync.Once
	katzMu   sync.Mutex
	katz     *lm.KatzModel
}

// NewLanguageModel trains a model of the given order from a result.
// The result should have been computed with MaxLength ≥ order and a
// low MinFrequency.
func NewLanguageModel(r *Result, order int) (*LanguageModel, error) {
	m, err := lm.FromResult(r.run.Result, order, lm.DefaultAlpha)
	if err != nil {
		return nil, err
	}
	v := corpusVocab(r.corpus)
	return &LanguageModel{termID: v.termID, term: v.term, model: m}, nil
}

// NewLanguageModelFromIndex trains a model of the given order from a
// persisted index (Result.Save → OpenIndex), streaming every indexed
// n-gram of length ≤ order into the model. Words resolve through the
// index's persisted dictionary, so the model answers identically to
// one trained from the Result the index was saved from. The index is
// only read during construction; it may be closed afterwards.
func NewLanguageModelFromIndex(x *Index, order int) (*LanguageModel, error) {
	if order < 1 {
		return nil, fmt.Errorf("ngramstats: language model order %d < 1", order)
	}
	m := lm.New(order, lm.DefaultAlpha)
	err := x.eachAggregateUnordered(func(s sequence.Seq, agg core.Aggregate) error {
		m.AddCount(s, agg.Frequency())
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ngramstats: language model from index: %w", err)
	}
	m.Finish()
	dict := x.b.Dictionary()
	return &LanguageModel{
		termID: dict.ID,
		term:   dict.Term,
		model:  m,
	}, nil
}

// vocab adapts a Corpus to the model's word↔id seam.
type vocab struct {
	termID func(string) (sequence.Term, bool)
	term   func(sequence.Term) string
}

func corpusVocab(c *Corpus) vocab {
	return vocab{termID: c.TermID, term: c.Term}
}

// Order returns the model's maximum n-gram length.
func (l *LanguageModel) Order() int { return l.model.Order() }

func (l *LanguageModel) encode(words []string) (sequence.Seq, bool) {
	ids := make(sequence.Seq, len(words))
	for i, w := range words {
		id, ok := l.termID(strings.ToLower(w))
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	return ids, true
}

// encodeSuffix encodes the longest suffix of words whose every word is
// in the vocabulary — the graceful context truncation shared by LogProb
// and Predict.
func (l *LanguageModel) encodeSuffix(words []string) sequence.Seq {
	for lo := 0; lo < len(words); lo++ {
		if ids, ok := l.encode(words[lo:]); ok {
			return ids
		}
	}
	return nil
}

// Score returns the stupid-backoff score of a word given its context
// words. Unknown context words truncate the context; an unknown word
// scores near zero.
func (l *LanguageModel) Score(context []string, word string) float64 {
	w, ok := l.termID(strings.ToLower(word))
	if !ok {
		return 0
	}
	ctx, ok := l.encode(context)
	if !ok {
		ctx = nil
	}
	return l.model.Score(ctx, w)
}

// Prediction is one candidate next word with its stupid-backoff score.
type Prediction struct {
	Word      string
	Frequency int64
	Score     float64
}

// Predict returns the k most likely words to follow the context: the
// observed continuations of the longest in-vocabulary context suffix
// that has any, best first, scored with stupid backoff. A context with
// unknown words is truncated to its longest known suffix; an empty (or
// fully unknown) context predicts from the unigram distribution.
func (l *LanguageModel) Predict(context []string, k int) []Prediction {
	ps := l.model.Predict(l.encodeSuffix(context), k)
	out := make([]Prediction, len(ps))
	for i, p := range ps {
		out[i] = Prediction{Word: l.term(p.Term), Frequency: p.Count, Score: p.Score}
	}
	return out
}

// LogProb returns the natural log of the phrase's probability under the
// Katz back-off model: each word is scored given its preceding words
// (up to order−1 of them). Unknown words score at the unseen-word floor
// 0.5/(N+1) and truncate the context of the words after them. The Katz
// model is derived from the counts once, on first use.
func (l *LanguageModel) LogProb(words []string) float64 {
	l.katzOnce.Do(func() {
		l.katz = lm.NewKatz(l.model, lm.DefaultKatzCutoff)
	})
	floor := math.Log(0.5 / float64(l.model.Total()+1))
	var total float64
	l.katzMu.Lock()
	defer l.katzMu.Unlock()
	for i := range words {
		w, ok := l.termID(strings.ToLower(words[i]))
		if !ok {
			total += floor
			continue
		}
		lo := i - (l.Order() - 1)
		if lo < 0 {
			lo = 0
		}
		total += math.Log(l.katz.Prob(l.encodeSuffix(words[lo:i]), w))
	}
	return total
}

// Perplexity evaluates the model on test sentences (each a slice of
// words) under stupid backoff; lower is better. Sentences with unknown
// words are skipped.
func (l *LanguageModel) Perplexity(sentences [][]string) float64 {
	var encoded []sequence.Seq
	for _, s := range sentences {
		if ids, ok := l.encode(s); ok {
			encoded = append(encoded, ids)
		}
	}
	return l.model.Perplexity(encoded)
}

// Generate samples a continuation of the prefix words, returning the
// full generated word sequence.
func (l *LanguageModel) Generate(rng *rand.Rand, prefix []string, n int) []string {
	ids, ok := l.encode(prefix)
	if !ok {
		ids = nil
	}
	out := l.model.Generate(rng, ids, n)
	words := make([]string, len(out))
	for i, id := range out {
		words[i] = l.term(id)
	}
	return words
}
