package ngramstats

// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VII) at benchmark scale. One benchmark per
// table/figure, with sub-benchmarks per dataset/method/parameter; the
// full parameter sweeps at larger scale live in cmd/experiments.
//
// Reported custom metrics mirror the paper's measures:
// records/op = MAP_OUTPUT_RECORDS, MBtransfer/op = MAP_OUTPUT_BYTES,
// ngrams/op = output size.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"ngramstats/internal/core"
	"ngramstats/internal/corpus"
	"ngramstats/internal/sequence"
	"ngramstats/internal/stats"
	"ngramstats/internal/synth"
)

var (
	benchOnce sync.Once
	benchNYT  *corpus.Collection
	benchCW   *corpus.Collection
)

// benchCorpora generates the benchmark-scale corpora once.
func benchCorpora() (*corpus.Collection, *corpus.Collection) {
	benchOnce.Do(func() {
		benchNYT = synth.Generate(synth.NYTLike(250, 42))
		benchCW = synth.Generate(synth.CWLike(500, 43))
	})
	return benchNYT, benchCW
}

func benchParams(b *testing.B, tau int64, sigma int) core.Params {
	b.Helper()
	return core.Params{
		Tau:         tau,
		Sigma:       sigma,
		NumReducers: 4,
		InputSplits: 8,
		TempDir:     b.TempDir(),
		Combiner:    true,
	}
}

// runMethod executes one method run and reports the paper's measures
// as custom benchmark metrics.
func runMethod(b *testing.B, col *corpus.Collection, m core.Method, p core.Params) {
	b.Helper()
	var records, bytes, shuffle, output int64
	for i := 0; i < b.N; i++ {
		run, err := core.Compute(context.Background(), col, m, p)
		if err != nil {
			b.Fatal(err)
		}
		records = run.RecordsTransferred()
		bytes = run.BytesTransferred()
		shuffle = run.ShuffleBytesWritten()
		output = run.Result.Len()
		if err := run.Result.Release(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records), "records/op")
	b.ReportMetric(float64(bytes)/(1<<20), "MBtransfer/op")
	b.ReportMetric(float64(shuffle)/(1<<20), "shuffleMB/op")
	b.ReportMetric(float64(output), "ngrams/op")
}

// BenchmarkTable1DatasetCharacteristics measures computing the Table I
// corpus statistics.
func BenchmarkTable1DatasetCharacteristics(b *testing.B) {
	nyt, cw := benchCorpora()
	for _, col := range []*corpus.Collection{nyt, cw} {
		b.Run(col.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := col.Stats()
				if st.Documents == 0 {
					b.Fatal("empty corpus")
				}
			}
		})
	}
}

// BenchmarkFig2OutputCharacteristics measures the full τ=5, σ=∞
// computation plus log-bucket histogramming of Figure 2.
func BenchmarkFig2OutputCharacteristics(b *testing.B) {
	nyt, cw := benchCorpora()
	for _, col := range []*corpus.Collection{nyt, cw} {
		b.Run(col.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := core.Compute(context.Background(), col, core.SuffixSigma,
					benchParams(b, 5, core.Unbounded))
				if err != nil {
					b.Fatal(err)
				}
				buckets := stats.NewBucket2D()
				err = run.Result.Each(func(s sequence.Seq, cf int64) error {
					buckets.Add(len(s), cf)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if buckets.Total() == 0 {
					b.Fatal("no output")
				}
				if err := run.Result.Release(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3UseCases measures the two Figure 3 use cases for every
// method on both corpora.
func BenchmarkFig3UseCases(b *testing.B) {
	nyt, cw := benchCorpora()
	cases := []struct {
		name  string
		col   *corpus.Collection
		tau   int64
		sigma int
	}{
		{"LanguageModel/NYT", nyt, 2, 5},
		{"LanguageModel/CW", cw, 3, 5},
		{"Analytics/NYT", nyt, 3, 100},
		{"Analytics/CW", cw, 5, 100},
	}
	for _, c := range cases {
		for _, m := range core.Methods() {
			b.Run(fmt.Sprintf("%s/%s", c.name, m), func(b *testing.B) {
				runMethod(b, c.col, m, benchParams(b, c.tau, c.sigma))
			})
		}
	}
}

// BenchmarkFig4VaryMinFrequency measures the τ sweep of Figure 4 at
// σ=5 on the NYT-like corpus.
func BenchmarkFig4VaryMinFrequency(b *testing.B) {
	nyt, _ := benchCorpora()
	for _, tau := range []int64{2, 10, 50} {
		for _, m := range core.Methods() {
			b.Run(fmt.Sprintf("tau=%d/%s", tau, m), func(b *testing.B) {
				runMethod(b, nyt, m, benchParams(b, tau, 5))
			})
		}
	}
}

// BenchmarkFig5VaryMaxLength measures the σ sweep of Figure 5 on the
// NYT-like corpus.
func BenchmarkFig5VaryMaxLength(b *testing.B) {
	nyt, _ := benchCorpora()
	for _, sigma := range []int{5, 10, 50, 100} {
		for _, m := range core.Methods() {
			b.Run(fmt.Sprintf("sigma=%d/%s", sigma, m), func(b *testing.B) {
				runMethod(b, nyt, m, benchParams(b, 3, sigma))
			})
		}
	}
}

// BenchmarkFig6ScalingDatasets measures SUFFIX-σ on 25–100 % samples
// (Figure 6).
func BenchmarkFig6ScalingDatasets(b *testing.B) {
	nyt, _ := benchCorpora()
	for _, frac := range []int{25, 50, 75, 100} {
		sample := nyt.Sample(float64(frac)/100, int64(frac))
		b.Run(fmt.Sprintf("fraction=%d%%", frac), func(b *testing.B) {
			runMethod(b, sample, core.SuffixSigma, benchParams(b, 3, 5))
		})
	}
}

// BenchmarkFig7ScalingSlots measures SUFFIX-σ under 1–8 map/reduce
// slots (Figure 7).
func BenchmarkFig7ScalingSlots(b *testing.B) {
	nyt, _ := benchCorpora()
	for _, slots := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			p := benchParams(b, 3, 5)
			p.MapSlots = slots
			p.ReduceSlots = slots
			runMethod(b, nyt, core.SuffixSigma, p)
		})
	}
}

// BenchmarkAblationStackVsHashmap compares the reverse-lexicographic
// two-stack reducer against the in-memory hashmap strawman of
// Section IV at the analytics setting.
func BenchmarkAblationStackVsHashmap(b *testing.B) {
	nyt, _ := benchCorpora()
	for _, m := range []core.Method{core.SuffixSigma, core.SuffixSigmaNaive} {
		b.Run(string(m), func(b *testing.B) {
			runMethod(b, nyt, m, benchParams(b, 3, 100))
		})
	}
}

// BenchmarkAblationCombiner measures NAÏVE with and without map-side
// local aggregation (Section V).
func BenchmarkAblationCombiner(b *testing.B) {
	nyt, _ := benchCorpora()
	for _, combine := range []bool{true, false} {
		b.Run(fmt.Sprintf("combiner=%v", combine), func(b *testing.B) {
			p := benchParams(b, 3, 5)
			p.Combiner = combine
			runMethod(b, nyt, core.Naive, p)
		})
	}
}

// BenchmarkAblationDocSplit measures SUFFIX-σ with and without the
// document-split pre-processing at large σ (Section V).
func BenchmarkAblationDocSplit(b *testing.B) {
	nyt, _ := benchCorpora()
	for _, split := range []bool{false, true} {
		b.Run(fmt.Sprintf("docsplit=%v", split), func(b *testing.B) {
			p := benchParams(b, 5, 100)
			p.DocSplit = split
			runMethod(b, nyt, core.SuffixSigma, p)
		})
	}
}

// fig7Result computes the fig7 SUFFIX-σ workload (τ=3, σ=5 on the
// NYT-like corpus) once for the consumption benchmarks.
func fig7Result(b *testing.B) *Result {
	b.Helper()
	nyt, _ := benchCorpora()
	c := &Corpus{col: nyt}
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 3, MaxLength: 5, Combiner: true,
		Reducers: 4, InputSplits: 8, TempDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// allTopK is the pre-redesign TopK: decode everything, sort, truncate.
// It serves as the allocation baseline for BenchmarkTopKDecodes.
func allTopK(r *Result, k int) ([]NGram, error) {
	all, err := r.All()
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Frequency != all[j].Frequency {
			return all[i].Frequency > all[j].Frequency
		}
		if len(all[i].IDs) != len(all[j].IDs) {
			return len(all[i].IDs) > len(all[j].IDs)
		}
		return all[i].Text < all[j].Text
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k], nil
}

// BenchmarkTopKDecodes verifies the consumption redesign's acceptance
// criterion on the fig7 SUFFIX-σ workload: the bounded-heap TopK(10)
// decodes O(k) NGrams (allocs/op stays flat in the result size), while
// the All-based baseline decodes every reported n-gram. Compare
// allocs/op between the two sub-benchmarks.
func BenchmarkTopKDecodes(b *testing.B) {
	res := fig7Result(b)
	defer res.Release()
	b.Logf("result size: %d n-grams", res.Len())

	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			top, err := res.TopK(10)
			if err != nil || len(top) != 10 {
				b.Fatalf("TopK: %v (%d)", err, len(top))
			}
		}
	})
	b.Run("all-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			top, err := allTopK(res, 10)
			if err != nil || len(top) != 10 {
				b.Fatalf("allTopK: %v (%d)", err, len(top))
			}
		}
	})
}

// BenchmarkLookupEarlyExit measures Lookup's first-match termination
// against the pre-redesign behaviour of scanning every remaining
// n-gram after the match.
func BenchmarkLookupEarlyExit(b *testing.B) {
	res := fig7Result(b)
	defer res.Release()
	top, err := res.TopK(1)
	if err != nil || len(top) != 1 {
		b.Fatalf("TopK: %v", err)
	}
	phrase := top[0].Text

	b.Run("early-exit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := res.Lookup(phrase); err != nil || !ok {
				b.Fatalf("Lookup: %v %v", ok, err)
			}
		}
	})
	b.Run("scan-all-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := scanAllLookup(res, phrase); err != nil || !ok {
				b.Fatalf("scanAllLookup: %v %v", ok, err)
			}
		}
	})
}

// scanAllLookup is the pre-redesign Lookup: it keeps scanning (and
// decoding) every n-gram after the match is found.
func scanAllLookup(r *Result, phrase string) (NGram, bool, error) {
	words := strings.Fields(phrase)
	ids := make(sequence.Seq, len(words))
	for i, w := range words {
		id, ok := r.corpus.TermID(strings.ToLower(w))
		if !ok {
			return NGram{}, false, nil
		}
		ids[i] = id
	}
	var found NGram
	ok := false
	err := r.Each(func(ng NGram) error {
		if !ok && sequence.Equal(sequence.Seq(ng.IDs), ids) {
			found = ng
			ok = true
		}
		return nil
	})
	return found, ok, err
}

// BenchmarkPublicAPI measures the end-to-end facade path (corpus from
// text, count, top-k) a downstream user exercises.
func BenchmarkPublicAPI(b *testing.B) {
	docs := make([]string, 50)
	for i := range docs {
		docs[i] = "the quick brown fox jumps over the lazy dog. the quick brown fox sleeps."
	}
	c, err := FromText("api", docs, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Count(context.Background(), c, Options{
			MinFrequency: 5, MaxLength: 4, TempDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.TopK(10); err != nil {
			b.Fatal(err)
		}
		if err := res.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusBuild measures the ingestion hot path — sentence
// splitting, tokenization, and integer encoding fused into the
// zero-allocation scanner — end to end through the public
// CorpusBuilder. Bytes/op is raw input text consumed.
func BenchmarkCorpusBuild(b *testing.B) {
	// Deterministic Zipf-flavored text: word ranks cycle through a
	// quadratic residue so frequent and rare words interleave, with
	// sentence breaks and abbreviation-adjacent forms mixed in to
	// exercise the scanner's boundary rules.
	docs := make([]string, 200)
	var total int64
	for d := range docs {
		var sb strings.Builder
		for s := 0; s < 6; s++ {
			n := 5 + (d+s)%17
			for w := 0; w < n; w++ {
				if w > 0 {
					sb.WriteByte(' ')
				}
				r := (d*131 + s*17 + w*w) % 4000
				sb.WriteString(synth.Word(r))
			}
			sb.WriteString(". ")
		}
		sb.WriteString("Dr. Smith paid $3.50 e.g. the fox didn't mind.\n")
		docs[d] = sb.String()
		total += int64(len(docs[d]))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := NewCorpusBuilder("bench", BuilderOptions{})
		for _, text := range docs {
			if err := builder.Add(Document{Text: text}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := builder.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// fig7Index persists the fig7 SUFFIX-σ result as an on-disk index (4
// shards, 128 precomputed top records) and opens it for querying.
func fig7Index(b *testing.B) *Index {
	b.Helper()
	res := fig7Result(b)
	defer res.Release()
	dir := filepath.Join(b.TempDir(), "idx")
	if err := res.SaveWith(dir, SaveOptions{Shards: 4, TopDepth: 128}); err != nil {
		b.Fatal(err)
	}
	ix, err := OpenIndex(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	return ix
}

// BenchmarkIndexLookup measures the serving-path point lookup over a
// saved index: shard binary search, block binary search, and the
// decoded-block cache — the hot path of one ngramsd /lookup request.
// The phrase mix is 64 frequent phrases plus one guaranteed miss.
func BenchmarkIndexLookup(b *testing.B) {
	ix := fig7Index(b)
	top, err := ix.TopK(64)
	if err != nil || len(top) == 0 {
		b.Fatalf("TopK: %v (%d)", err, len(top))
	}
	phrases := make([]string, 0, len(top)+1)
	for _, ng := range top {
		phrases = append(phrases, ng.Text)
	}
	phrases = append(phrases, "xylophone zzyzx")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := phrases[i%len(phrases)]
		_, ok, err := ix.Lookup(p)
		if err != nil {
			b.Fatal(err)
		}
		if !ok && p != "xylophone zzyzx" {
			b.Fatalf("Lookup(%q) missed", p)
		}
	}
	b.StopTimer()
	if hits, misses := ix.CacheStats(); hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "cachehit/op")
	}
}

// BenchmarkIndexTopK measures both TopK serving paths of a saved
// index: "stored" answers from the precomputed top records without
// touching the shards; "scan" exceeds the stored depth and falls back
// to the full streaming selection.
func BenchmarkIndexTopK(b *testing.B) {
	ix := fig7Index(b)
	b.Run("stored", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			top, err := ix.TopK(100)
			if err != nil || len(top) != 100 {
				b.Fatalf("TopK(100): %v (%d)", err, len(top))
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			top, err := ix.TopK(500)
			if err != nil || len(top) != 500 {
				b.Fatalf("TopK(500): %v (%d)", err, len(top))
			}
		}
	})
}

// lsmBenchBatches generates five deterministic document batches over a
// shared skewed vocabulary, so delta generations genuinely overlap the
// base's key space (the case merge-on-read has to fold).
func lsmBenchBatches() [][]Document {
	rng := rand.New(rand.NewSource(43))
	vocab := make([]string, 300)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%03d", i)
	}
	batches := make([][]Document, 5)
	for bi := range batches {
		docs := make([]Document, 80)
		for d := range docs {
			var sb strings.Builder
			for s := 0; s < 5; s++ {
				for w := 0; w < 8; w++ {
					// Squaring skews toward low identifiers: frequent terms
					// shared across every batch.
					f := rng.Float64()
					sb.WriteString(vocab[int(f*f*float64(len(vocab)))])
					sb.WriteByte(' ')
				}
				sb.WriteString(". ")
			}
			docs[d] = Document{Text: sb.String(), Year: 2000 + bi}
		}
		batches[bi] = docs
	}
	return batches
}

// lsmBenchChain builds the benchmark chain — one base plus 4 delta
// generations, τ = 1 (the appendable invariant) — and returns its
// directory.
func lsmBenchChain(b *testing.B) string {
	b.Helper()
	batches := lsmBenchBatches()
	dir := filepath.Join(b.TempDir(), "chain")
	c, err := FromDocuments(context.Background(), "lsm-bench",
		func(yield func(Document, error) bool) {
			for _, d := range batches[0] {
				if !yield(d, nil) {
					return
				}
			}
		}, BuilderOptions{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 1, MaxLength: 4, Combiner: true, TempDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := res.SaveWith(dir, SaveOptions{TempDir: b.TempDir()}); err != nil {
		b.Fatal(err)
	}
	res.Release()
	for _, batch := range batches[1:] {
		if _, err := AppendDelta(context.Background(), dir, batch, AppendOptions{
			Count: Options{Combiner: true, TempDir: b.TempDir()},
		}); err != nil {
			b.Fatal(err)
		}
	}
	return dir
}

// BenchmarkViewLookup measures the merge-on-read point lookup across a
// chain of 1 base + 4 deltas: one block probe per generation plus the
// cross-generation aggregate fold — the read cost compaction buys
// back (compare BenchmarkIndexLookup). The phrase mix is 64 frequent
// phrases plus one guaranteed miss, as in BenchmarkIndexLookup.
func BenchmarkViewLookup(b *testing.B) {
	dir := lsmBenchChain(b)
	ix, err := OpenIndex(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	top, err := ix.TopK(64)
	if err != nil || len(top) == 0 {
		b.Fatalf("TopK: %v (%d)", err, len(top))
	}
	phrases := make([]string, 0, len(top)+1)
	for _, ng := range top {
		phrases = append(phrases, ng.Text)
	}
	phrases = append(phrases, "xylophone zzyzx")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := phrases[i%len(phrases)]
		_, ok, err := ix.Lookup(p)
		if err != nil {
			b.Fatal(err)
		}
		if !ok && p != "xylophone zzyzx" {
			b.Fatalf("Lookup(%q) missed", p)
		}
	}
}

// BenchmarkCompact measures the compaction merge itself: one
// streaming pass over all 5 generations' sorted runs into a fresh
// base. Each iteration compacts a pristine copy of the chain.
func BenchmarkCompact(b *testing.B) {
	pristine := lsmBenchChain(b)
	scratch := b.TempDir()
	var records int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(scratch, fmt.Sprintf("run-%d", i))
		if err := os.CopyFS(dir, os.DirFS(pristine)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := CompactIndex(dir, CompactOptions{TempDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		if !stats.Compacted {
			b.Fatal("nothing compacted")
		}
		records = stats.Records
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
	b.ReportMetric(float64(records), "records/op")
}
