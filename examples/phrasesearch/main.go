// Phrase search: the inverted-index by-product of APRIORI-INDEX
// (Section III-B).
//
// APRIORI-INDEX does not just count n-grams — it materializes a
// positional inverted index of every frequent n-gram, which "can be
// used to quickly determine the locations of a specific frequent
// n-gram". This example builds the index over a small literary corpus
// and answers phrase queries: how often, and exactly where, a phrase
// occurs.
//
// Run with:
//
//	go run ./examples/phrasesearch
package main

import (
	"context"
	"fmt"
	"log"

	"ngramstats"
)

func main() {
	docs := []string{
		"It was the best of times. It was the worst of times. " +
			"It was the age of wisdom. It was the age of foolishness.",
		"It was the season of light. It was the season of darkness. " +
			"It was the spring of hope. It was the winter of despair.",
		"We had everything before us. We had nothing before us. " +
			"It was the best of times indeed.",
	}
	// Ingest through the streaming builder: one Add per document.
	builder := ngramstats.NewCorpusBuilder("tale", ngramstats.BuilderOptions{})
	for _, text := range docs {
		if err := builder.Add(ngramstats.Document{Text: text}); err != nil {
			log.Fatal(err)
		}
	}
	corpus, err := builder.Finish()
	if err != nil {
		log.Fatal(err)
	}

	index, err := ngramstats.BuildPhraseIndex(context.Background(), corpus, ngramstats.Options{
		MinFrequency: 2,
		MaxLength:    5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d phrases (longest: %d words)\n\n", index.Len(), index.MaxLength())

	for _, phrase := range []string{
		"it was the",
		"the best of times",
		"before us",
		"the winter of despair", // occurs once: below τ=2, not indexed
	} {
		cf, ok, err := index.Frequency(phrase)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("%-24q not indexed (cf < 2 or too long)\n", phrase)
			continue
		}
		locs, err := index.Locations(phrase)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24q cf=%d at ", phrase, cf)
		for i, l := range locs {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("doc%d:%d", l.DocID, l.Position)
		}
		fmt.Println()
	}
}
