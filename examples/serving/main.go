// Serving: persist a computed result as an on-disk index and query it
// back — the durable hand-off between the one-shot MapReduce
// computation and a serving layer, in the mold of the Google Books
// n-gram viewer sitting downstream of a precomputed corpus.
//
// The walkthrough is compute → Save → OpenIndex → query: the reopened
// index answers Lookup, Prefix, and TopK byte-identically to the live
// Result, serves any number of concurrent readers without locks, and
// keeps hot blocks in a decoded-block cache. The same directory is
// what cmd/ngramsd serves over HTTP:
//
//	ngramsd -addr :8091 -index books=<dir>
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"ngramstats"
)

func main() {
	ctx := context.Background()

	// A small corpus with a few phrases worth querying back.
	docs := []string{
		"the quick brown fox jumps over the lazy dog. the quick brown fox returns.",
		"a quick brown fox is not a lazy dog. the dog sleeps.",
		"the quick brown fox jumps over the lazy dog again.",
		"lazy dogs sleep. quick foxes jump. the quick brown fox jumps.",
	}
	corpus, err := ngramstats.FromText("serving-demo", docs, nil)
	if err != nil {
		log.Fatal(err)
	}
	result, err := ngramstats.Count(ctx, corpus, ngramstats.Options{
		MinFrequency: 2, // τ
		MaxLength:    4, // σ
	})
	if err != nil {
		log.Fatal(err)
	}
	defer result.Release()

	// Save persists the result as a sharded, checksummed index: sorted
	// shard files in the shuffle's run format, the corpus dictionary,
	// precomputed top records, and a manifest.
	dir, err := os.MkdirTemp("", "ngram-index-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	indexDir := filepath.Join(dir, "idx")
	if err := result.Save(indexDir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %d n-grams to %s\n", result.Len(), indexDir)

	// OpenIndex reopens the artifact — in this process, a later one, or
	// the ngramsd daemon — with answers identical to the live result's.
	index, err := ngramstats.OpenIndex(indexDir)
	if err != nil {
		log.Fatal(err)
	}
	defer index.Close()

	// Point lookup: one shard, one block, served from cache when hot.
	ng, found, err := index.Lookup("quick brown fox")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup %q: found=%v cf=%d\n", "quick brown fox", found, ng.Frequency)

	// Prefix scan: every indexed phrase extending the words.
	extensions, err := index.Prefix("quick brown", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extensions of %q:\n", "quick brown")
	for _, e := range extensions {
		fmt.Printf("  %6d  %s\n", e.Frequency, e.Text)
	}

	// Top-k: served from the precomputed top records without scanning.
	top, err := index.TopK(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5:")
	for _, t := range top {
		fmt.Printf("  %6d  %s\n", t.Frequency, t.Text)
	}

	// The index is safe for concurrent readers — here 8 goroutines
	// hammer the same phrase; the block cache absorbs the re-decodes.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, _, err := index.Lookup("lazy dog"); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := index.CacheStats()
	fmt.Printf("block cache after 800 concurrent lookups: %d hits, %d misses\n", hits, misses)
}
