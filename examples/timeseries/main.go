// Time series: the aggregation extension of Section VI-B.
//
// Instead of a single count per n-gram, SUFFIX-σ aggregates per-year
// occurrence counts from document timestamps — the n-gram time series
// popularized by Michel et al.'s culturomics work. The same lazy
// stack-merging applies; only the aggregate cells change.
//
// Run with:
//
//	go run ./examples/timeseries
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"ngramstats"
)

const (
	yearLo = 1987
	yearHi = 2007
)

func main() {
	ctx := context.Background()
	corpus := ngramstats.SyntheticNYT(2500, 33) // documents span 1987–2007

	result, err := ngramstats.Count(ctx, corpus, ngramstats.Options{
		MinFrequency: 30,
		MaxLength:    2,
		Aggregation:  ngramstats.TimeSeries,
		Combiner:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer result.Release()
	fmt.Printf("%d n-grams with per-year counts (tau=30, sigma=2)\n\n", result.Len())

	// Collect bigram series and show the busiest ones as sparklines,
	// streaming over the result with the NGrams iterator.
	var bigrams []ngramstats.NGram
	for ng, err := range result.NGrams() {
		if err != nil {
			log.Fatal(err)
		}
		if ng.Length() == 2 {
			bigrams = append(bigrams, ng)
		}
	}
	sort.Slice(bigrams, func(i, j int) bool { return bigrams[i].Frequency > bigrams[j].Frequency })
	if len(bigrams) > 8 {
		bigrams = bigrams[:8]
	}

	fmt.Printf("top bigram time series, %d-%d:\n", yearLo, yearHi)
	for _, ng := range bigrams {
		s := ng.Series(yearLo, yearHi)
		peak, _ := s.PeakYear()
		fmt.Printf("  %-18s cf=%-5d %s  peak %d\n", ng.Text, ng.Frequency, s.Sparkline(), peak)
	}

	// Correlate the two busiest series (smoothed).
	if len(bigrams) >= 2 {
		a := bigrams[0].Series(yearLo, yearHi).MovingAverage(3)
		b := bigrams[1].Series(yearLo, yearHi).MovingAverage(3)
		fmt.Printf("\ncorrelation of %q and %q (3y smoothed): %.2f\n",
			bigrams[0].Text, bigrams[1].Text, ngramstats.Correlation(a, b))
	}
}
