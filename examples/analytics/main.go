// Text analytics: the paper's second use case (Section VII-D).
//
// With a high maximum length (σ=100) and a moderate minimum collection
// frequency, the computation surfaces long recurring fragments of text
// — quotations, recipes, boilerplate — to be analyzed further. This is
// the regime where SUFFIX-σ beats the APRIORI methods by an order of
// magnitude in the paper. Maximality (Section VI-A) keeps the output
// compact: a long fragment is reported once instead of once per
// substring.
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ngramstats"
)

func main() {
	ctx := context.Background()
	corpus := ngramstats.SyntheticNYT(1500, 21)
	st := corpus.Stats()
	fmt.Printf("corpus: %d docs, %d term occurrences\n\n", st.Documents, st.TermOccurrences)

	// First: all frequent n-grams up to sigma=100. Run it as a job
	// handle and poll live progress: document splitting launches three
	// MapReduce jobs, and the snapshot shows phases and task counts as
	// they go by.
	job, err := ngramstats.Start(ctx, corpus, ngramstats.Options{
		MinFrequency:   8,
		MaxLength:      100,
		Combiner:       true,
		DocumentSplits: true, // big win at large sigma (Section V)
	})
	if err != nil {
		log.Fatal(err)
	}
	printerDone := make(chan struct{})
	go func() {
		defer close(printerDone)
		tick := time.NewTicker(150 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-job.Done():
				return
			case <-tick.C:
				p := job.Progress()
				fmt.Printf("  ...%s %s: tasks %d/%d, %d records emitted\n",
					p.JobName, p.Phase, p.TasksDone, p.TasksTotal, p.Records)
			}
		}
	}()
	allRes, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	defer allRes.Release()
	<-printerDone // join the printer so progress lines never interleave results

	// Second: only the maximal ones.
	maxRes, err := ngramstats.Count(ctx, corpus, ngramstats.Options{
		MinFrequency:   8,
		MaxLength:      100,
		Selection:      ngramstats.SelectMaximal,
		Combiner:       true,
		DocumentSplits: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer maxRes.Release()

	fmt.Printf("frequent n-grams (tau=8, sigma=100): %d\n", allRes.Len())
	fmt.Printf("maximal n-grams:                     %d (%.1f%% of all)\n\n",
		maxRes.Len(), 100*float64(maxRes.Len())/float64(allRes.Len()))

	fmt.Println("longest recurring fragments (maximal):")
	longest, err := maxRes.Longest(5)
	if err != nil {
		log.Fatal(err)
	}
	for _, ng := range longest {
		text := ng.Text
		if len(text) > 100 {
			text = text[:100] + "..."
		}
		fmt.Printf("  %3d words, cf=%-4d  %s\n", ng.Length(), ng.Frequency, text)
	}

	fmt.Printf("\nrun: %d jobs, %v, %d records shuffled\n",
		maxRes.Jobs(), maxRes.Wallclock(), maxRes.RecordsTransferred())
}
