// Language model: the paper's first use case (Section VII-D).
//
// n-gram statistics with σ=5 and a low minimum collection frequency —
// the regime of the Google n-gram corpus — feed a stupid-backoff
// language model (Brants et al., EMNLP 2007). The example trains on a
// synthetic NYT-like corpus, evaluates perplexity on held-out
// documents against a unigram baseline, and generates a few sentences.
//
// Run with:
//
//	go run ./examples/languagemodel
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"ngramstats"
)

func main() {
	ctx := context.Background()

	all := ngramstats.SyntheticNYT(1200, 7)
	train, test := all.Split(0.95, 99)
	fmt.Printf("corpus: %d train docs, %d held-out docs\n",
		train.Stats().Documents, test.Stats().Documents)

	fmt.Println("computing n-gram statistics (sigma=5, tau=2, suffix-sigma)...")
	job, err := ngramstats.Start(ctx, train, ngramstats.Options{
		MinFrequency: 2,
		MaxLength:    5,
		Combiner:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	p := job.Progress()
	fmt.Printf("  %d MapReduce job(s), %d tasks\n", p.JobsDone, p.TasksDone)
	defer result.Release()
	fmt.Printf("  %d n-grams in %v (%d records shuffled)\n\n",
		result.Len(), result.Wallclock(), result.RecordsTransferred())

	// Evaluate each model order on real held-out sentences and on the
	// same sentences with their words shuffled. Stupid-backoff scores
	// are not normalized across orders, so the informative signal is the
	// real-vs-shuffled gap: a unigram model cannot distinguish word
	// order at all (ratio 1.0), while higher-order models assign real
	// sentences distinctly lower perplexity than scrambled ones.
	sentences := test.Sentences(300)
	shuffled := shuffleWords(sentences, 17)
	fmt.Printf("held-out evaluation on %d sentences (real vs word-shuffled):\n", len(sentences))
	var model *ngramstats.LanguageModel
	for _, order := range []int{1, 2, 3, 5} {
		m, err := ngramstats.NewLanguageModel(result, order)
		if err != nil {
			log.Fatal(err)
		}
		real := m.Perplexity(sentences)
		scram := m.Perplexity(shuffled)
		fmt.Printf("  %d-gram model: real %8.1f   shuffled %8.1f   ratio %.2f\n",
			order, real, scram, real/scram)
		if order == 2 {
			model = m
		}
	}
	fmt.Println()

	// Scoring: frequent continuations beat rare ones.
	w0 := train.Term(0) // most frequent word
	w1 := train.Term(1)
	rare := train.Term(5000)
	fmt.Printf("S(%q | %q) = %.4f\n", w1, w0, model.Score([]string{w0}, w1))
	fmt.Printf("S(%q | %q) = %.4f\n\n", rare, w0, model.Score([]string{w0}, rare))

	// Generation.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3; i++ {
		words := model.Generate(rng, []string{train.Term(uint32(i))}, 12)
		fmt.Printf("generated: %s\n", strings.Join(words, " "))
	}
}

// shuffleWords permutes the words within each sentence,
// deterministically from seed.
func shuffleWords(sentences [][]string, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, len(sentences))
	for i, s := range sentences {
		c := append([]string(nil), s...)
		rng.Shuffle(len(c), func(a, b int) { c[a], c[b] = c[b], c[a] })
		out[i] = c
	}
	return out
}
