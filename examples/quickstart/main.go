// Quickstart: compute n-gram statistics over a few documents with the
// default method (SUFFIX-σ) and print every frequent n-gram, using the
// streaming-first API end to end: documents enter one at a time through
// a CorpusBuilder, the computation runs as a Job handle with observable
// progress, and results stream out of the NGrams iterator.
//
// The input is the running example of the paper (Section III): three
// documents over the vocabulary {a, b, x}. With τ=3 and σ=3 the
// expected output is
//
//	⟨a⟩:3 ⟨b⟩:5 ⟨x⟩:7 ⟨a x⟩:3 ⟨x b⟩:4 ⟨a x b⟩:3
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ngramstats"
)

func main() {
	ctx := context.Background()

	// Ingestion streams: each Add tokenizes and encodes one document and
	// releases its raw text. Past the memory budget, encoded documents
	// spill to disk, so raw streams far larger than RAM ingest the same
	// way (the encoded corpus itself stays resident).
	builder := ngramstats.NewCorpusBuilder("running-example", ngramstats.BuilderOptions{})
	for _, text := range []string{
		"a x b x x",
		"b a x b x",
		"x b a x b",
	} {
		if err := builder.Add(ngramstats.Document{Text: text}); err != nil {
			log.Fatal(err)
		}
	}
	corpus, err := builder.Finish()
	if err != nil {
		log.Fatal(err)
	}

	// Execution is a handle: Start returns immediately, Progress can be
	// polled while MapReduce jobs run, Wait delivers the result.
	job, err := ngramstats.Start(ctx, corpus, ngramstats.Options{
		MinFrequency: 3, // τ
		MaxLength:    3, // σ
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	defer result.Release()

	p := job.Progress()
	fmt.Printf("%d n-grams with cf >= 3 and length <= 3 (%d job(s), %d tasks):\n\n",
		result.Len(), p.JobsDone, p.TasksDone)

	// Consumption streams too: ranging over NGrams decodes one n-gram at
	// a time, never materializing the result set.
	for ng, err := range result.NGrams() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cf=%d  ⟨%s⟩\n", ng.Frequency, ng.Text)
	}

	fmt.Printf("\nrun: %d job(s), %v, %d records shuffled\n",
		result.Jobs(), result.Wallclock(), result.RecordsTransferred())
}
