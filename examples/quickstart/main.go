// Quickstart: compute n-gram statistics over a few documents with the
// default method (SUFFIX-σ) and print every frequent n-gram.
//
// The input is the running example of the paper (Section III): three
// documents over the vocabulary {a, b, x}. With τ=3 and σ=3 the
// expected output is
//
//	⟨a⟩:3 ⟨b⟩:5 ⟨x⟩:7 ⟨a x⟩:3 ⟨x b⟩:4 ⟨a x b⟩:3
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ngramstats"
)

func main() {
	corpus, err := ngramstats.FromText("running-example", []string{
		"a x b x x",
		"b a x b x",
		"x b a x b",
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	result, err := ngramstats.Count(context.Background(), corpus, ngramstats.Options{
		MinFrequency: 3, // τ
		MaxLength:    3, // σ
	})
	if err != nil {
		log.Fatal(err)
	}
	defer result.Release()

	fmt.Printf("%d n-grams with cf >= 3 and length <= 3:\n\n", result.Len())
	ngrams, err := result.TopK(int(result.Len()))
	if err != nil {
		log.Fatal(err)
	}
	for _, ng := range ngrams {
		fmt.Printf("  cf=%d  ⟨%s⟩\n", ng.Frequency, ng.Text)
	}

	fmt.Printf("\nrun: %d job(s), %v, %d records shuffled\n",
		result.Jobs(), result.Wallclock(), result.RecordsTransferred())
}
