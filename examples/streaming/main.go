// Live streaming: one-pass approximate counting with exact-job
// reconciliation.
//
// The paper's MapReduce methods are batch: they need the whole corpus
// before anything can be counted. This example shows the streaming
// companion — documents arrive one at a time, a count-min sketch
// answers frequency queries immediately with a one-sided eps*N error
// bound, and a periodic reconciliation runs the exact SUFFIX-σ job
// over everything accumulated so far. After reconciling, queries split
// into an exact component plus a fresh sketch delta covering only the
// documents that arrived since.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"ngramstats"
)

// makeStream generates a deterministic skewed document stream:
// sentences of zipf-distributed words, so it has genuine heavy
// hitters the way real text does.
func makeStream(n int) []ngramstats.Document {
	rng := rand.New(rand.NewSource(42))
	z := rand.NewZipf(rng, 1.3, 2.0, 799)
	docs := make([]ngramstats.Document, n)
	for i := range docs {
		var sb strings.Builder
		for s := 0; s < 3+rng.Intn(3); s++ {
			for w := 0; w < 5+rng.Intn(8); w++ {
				if w > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "w%d", z.Uint64())
			}
			sb.WriteString(". ")
		}
		docs[i] = ngramstats.Document{Year: 2000 + i%10, Text: sb.String()}
	}
	return docs
}

func main() {
	ctx := context.Background()

	si, err := ngramstats.NewStreamIngester(ngramstats.IngestOptions{
		Epsilon:   1e-3, // estimates exceed truth by at most eps*N ...
		Delta:     0.01, // ... with probability 1-delta, per phrase
		MaxLength: 3,
		TopK:      16,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic stream, consumed document by document as if arriving
	// live.
	stream := makeStream(300)

	// Phase 1: ingest the first two thirds and query the sketch alone.
	split := 2 * len(stream) / 3
	if err := si.Ingest(stream[:split]...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d documents, %d pending reconciliation\n", si.Docs(), si.Pending())
	fmt.Println("\napproximate heavy hitters (sketch only):")
	for _, hh := range si.TopK(5) {
		fmt.Printf("%10d (+<=%d)  %s\n", hh.Estimate, hh.Bound, hh.Phrase)
	}

	// Phase 2: reconcile — freeze the stream, run the exact MapReduce
	// job over it through the standard corpus build, drop the counted
	// delta. The result is byte-identical to a batch run over the same
	// documents.
	rc, err := si.BeginReconcile()
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := rc.Corpus(ctx, "stream")
	if err != nil {
		log.Fatal(err)
	}
	exact, err := ngramstats.Count(ctx, corpus, ngramstats.Options{
		MinFrequency: 2,
		MaxLength:    3,
		Combiner:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer exact.Release()
	rc.Commit()
	fmt.Printf("\nreconciled %d documents into %d exact n-grams; pending now %d\n",
		si.Covered(), exact.Len(), si.Pending())

	// Phase 3: keep streaming. Queries now combine the reconciled exact
	// count with the sketch delta over the new arrivals.
	if err := si.Ingest(stream[split:]...); err != nil {
		log.Fatal(err)
	}
	top, err := exact.TopK(1)
	if err != nil {
		log.Fatal(err)
	}
	phrase := top[0].Text
	ac, ok := si.Estimate(phrase)
	if !ok {
		log.Fatalf("estimate rejected %q", phrase)
	}
	fmt.Printf("\nafter %d more documents, %q:\n", len(stream)-split, phrase)
	fmt.Printf("  exact (reconciled)  %d\n", top[0].Frequency)
	fmt.Printf("  sketch delta        %d (+<=%d)\n", ac.Estimate, ac.Bound)
	fmt.Printf("  combined estimate   %d\n", top[0].Frequency+ac.Estimate)

	// One-sidedness check against a full batch run over the whole
	// stream: the combined estimate never undercounts.
	batchCorpus, err := ngramstats.FromDocuments(ctx, "batch",
		func(yield func(ngramstats.Document, error) bool) {
			for _, d := range stream {
				if !yield(d, nil) {
					return
				}
			}
		}, ngramstats.BuilderOptions{})
	if err != nil {
		log.Fatal(err)
	}
	batch, err := ngramstats.Count(ctx, batchCorpus, ngramstats.Options{
		MinFrequency: 2, MaxLength: 3, Combiner: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer batch.Release()
	ng, found, err := batch.Lookup(phrase)
	if err != nil || !found {
		log.Fatalf("batch lookup %q: %v %v", phrase, found, err)
	}
	combined := top[0].Frequency + ac.Estimate
	if combined < ng.Frequency {
		log.Fatalf("combined estimate %d undercounts batch truth %d", combined, ng.Frequency)
	}
	fmt.Printf("  batch truth         %d (estimate is one-sided: %d >= %d)\n",
		ng.Frequency, combined, ng.Frequency)
}
