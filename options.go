package ngramstats

import (
	"fmt"
	"os"

	"ngramstats/internal/core"
	"ngramstats/internal/mapreduce"
)

// Method selects the algorithm used to compute n-gram statistics.
type Method string

// Available methods. MethodSuffixSigma is the recommended default: it
// outperforms the alternatives by up to an order of magnitude for long
// or infrequent n-grams and is never significantly worse.
const (
	MethodNaive        Method = Method(core.Naive)
	MethodAprioriScan  Method = Method(core.AprioriScan)
	MethodAprioriIndex Method = Method(core.AprioriIndex)
	MethodSuffixSigma  Method = Method(core.SuffixSigma)
)

// Selection restricts which frequent n-grams are reported.
type Selection int

const (
	// SelectAll reports every n-gram with cf ≥ MinFrequency.
	SelectAll Selection = iota
	// SelectMaximal reports only n-grams with no frequent
	// super-sequence. Dramatically smaller output; omitted n-grams are
	// exactly the subsequences of reported ones.
	SelectMaximal
	// SelectClosed reports only n-grams with no equally-frequent
	// super-sequence. Omitted n-grams can be reconstructed together
	// with their exact frequencies.
	SelectClosed
)

// Aggregation selects what is collected per n-gram.
type Aggregation int

const (
	// Counts aggregates total occurrence counts (the default).
	Counts Aggregation = iota
	// TimeSeries aggregates per-year occurrence counts from document
	// publication years.
	TimeSeries
	// DocumentIndex aggregates per-document occurrence counts (an
	// inverted index).
	DocumentIndex
)

// Execution selects the backend that runs a computation's MapReduce
// tasks. The zero value keeps the in-process default (goroutine
// tasks), unless the NGRAMS_RUNNER environment variable overrides it.
type Execution struct {
	// Runner is the backend address: "local" executes tasks as
	// goroutines in this process; "process" executes every map/reduce
	// task in a separate worker OS process; "net://host:port[?spawn=N]"
	// starts an HTTP coordinator on host:port and drives net workers
	// with task leases, heartbeats, retry, and a shuffle-transfer
	// service (spawn=N fixes the number of spawned workers, spawn=0
	// relies entirely on externally connected `ngrams -worker-connect`
	// workers). Worker-based backends re-execute the current binary;
	// wire mapreduce.RunWorkerIfRequested into main for non-library
	// binaries — the ngrams and experiments commands already do. Any
	// scheme registered via mapreduce.RegisterRunner is accepted;
	// unknown ones are a Start error. Empty selects the default,
	// honoring NGRAMS_RUNNER.
	Runner string
	// Workers bounds concurrently running worker processes (process
	// backend: default GOMAXPROCS; net backend: spawned workers,
	// default max(2, GOMAXPROCS)).
	Workers int
	// MaxAttempts is the per-task failure budget before the computation
	// fails; attempts beyond the first run on a fresh worker with a
	// clean scratch directory, and under the net backend expired leases
	// count against it (default: 2, i.e. one retry).
	MaxAttempts int
}

// Options configures Count. The zero value computes statistics for all
// n-grams of any length occurring at least once, using SUFFIX-σ with
// sensible local defaults — set MinFrequency and MaxLength for
// anything non-trivial.
type Options struct {
	// Method is the algorithm; empty selects MethodSuffixSigma.
	Method Method
	// MinFrequency is τ: the minimum number of occurrences. Values < 1
	// are treated as 1.
	MinFrequency int64
	// MaxLength is σ: the maximum n-gram length in words. 0 means
	// unbounded.
	MaxLength int
	// Selection optionally restricts output to maximal or closed
	// n-grams (MethodSuffixSigma only).
	Selection Selection
	// Aggregation selects counts, per-year time series, or per-document
	// indexes (MethodSuffixSigma only for the latter two).
	Aggregation Aggregation
	// Reducers is the number of reduce partitions per job (default:
	// 2×GOMAXPROCS).
	Reducers int
	// MapSlots and ReduceSlots bound task concurrency (default:
	// GOMAXPROCS).
	MapSlots, ReduceSlots int
	// InputSplits is the number of map tasks over the corpus (default
	// 16).
	InputSplits int
	// DocumentSplits enables the pre-processing that splits documents
	// at infrequent terms; worthwhile for large MaxLength.
	DocumentSplits bool
	// Combiner enables map-side local aggregation.
	Combiner bool
	// TempDir is the scratch directory for shuffle spills (default:
	// system temp).
	TempDir string
	// Execution selects the backend that runs the MapReduce tasks: in
	// this process (the default) or as separate worker OS processes,
	// with per-task retry. The counters of a run report WORKER_PROCS
	// and TASKS_RETRIED under the process backend.
	Execution Execution
	// Logf, if non-nil, receives human-readable progress lines. For
	// structured live progress (phases, task counts, live counters) use
	// Start and poll the returned Job's Progress instead.
	Logf func(format string, args ...any)
}

func (o Options) params() (core.Method, core.Params, error) {
	m := core.Method(o.Method)
	if o.Method == "" {
		m = core.SuffixSigma
	}
	p := core.Params{
		Tau:         o.MinFrequency,
		Sigma:       o.MaxLength,
		NumReducers: o.Reducers,
		MapSlots:    o.MapSlots,
		ReduceSlots: o.ReduceSlots,
		InputSplits: o.InputSplits,
		TempDir:     o.TempDir,
		DocSplit:    o.DocumentSplits,
		Combiner:    o.Combiner,
		Select:      core.SelectMode(o.Selection),
		Aggregation: core.AggregationKind(o.Aggregation),
	}
	if o.Execution != (Execution{}) {
		// Workers/MaxAttempts without an explicit Runner still apply:
		// the backend name then comes from NGRAMS_RUNNER (empty means
		// local, where the knobs are moot).
		name := o.Execution.Runner
		if name == "" {
			name = os.Getenv(mapreduce.RunnerEnv)
		}
		r, err := mapreduce.NewRunner(name, o.Execution.Workers, o.Execution.MaxAttempts)
		if err != nil {
			return m, p, fmt.Errorf("ngramstats: %w", err)
		}
		p.Runner = r
	}
	if o.Logf != nil {
		p.Progress = mapreduce.LogProgress(o.Logf)
	}
	return m, p, nil
}
