// Package ngramstats computes n-gram statistics over document
// collections with MapReduce-style distributed data processing, as
// described in:
//
//	Klaus Berberich, Srikanta Bedathur.
//	"Computing n-Gram Statistics in MapReduce." EDBT 2013.
//
// Given a collection of documents, a minimum collection frequency τ and
// a maximum length σ, the library identifies every n-gram (contiguous
// sequence of words, respecting sentence boundaries) occurring at least
// τ times with at most σ words, together with its exact number of
// occurrences. Four algorithms are provided:
//
//   - MethodNaive: word counting extended to all n-grams (Algorithm 1);
//   - MethodAprioriScan: one pruned scan per n-gram length, using the
//     APRIORI principle (Algorithm 2);
//   - MethodAprioriIndex: builds a positional inverted index and joins
//     posting lists for longer n-grams (Algorithm 3);
//   - MethodSuffixSigma: the paper's contribution — a single job that
//     sorts truncated suffixes in reverse lexicographic order and
//     aggregates with two stacks (Algorithm 4). It dominates the
//     alternatives for long and/or infrequent n-grams and matches them
//     elsewhere.
//
// The MapReduce substrate is a runtime faithful to Hadoop's
// programming model (mappers, combiners, partitioners, sort
// comparators, reducers, counters, slot-bounded parallelism, spill-to-
// disk shuffle), so the same algorithm structure, data movement, and
// measures the paper reports are observable locally via Result
// counters. Execution is pluggable: jobs compile into a declarative
// plan handed to an execution backend, either in-process goroutine
// tasks (the default) or one worker OS process per task with per-task
// retry — select it with Options.Execution (or the NGRAMS_RUNNER
// environment variable), and read WORKER_PROCS / TASKS_RETRIED in the
// counters.
//
// # Streaming-first API
//
// The paper's methods exist because corpora do not fit comfortably in
// one machine's memory; the public API streams at every stage
// accordingly.
//
// Ingestion: a CorpusBuilder accepts one Document at a time, tokenizes
// and integer-encodes it immediately, and spills encoded documents to
// disk past a memory budget — raw text is never held beyond the
// document being added. FromDocuments drives a builder from an
// iterator; FromText, FromWebText and FromTextFiles are batch facades
// over the same path.
//
// Execution: Start launches the computation and returns a Job handle
// with live, monotonic progress (phases, task counts, live counters
// including measured shuffle bytes), cancellation via context, and
// Wait for the result. Count remains as Start followed by Wait.
//
// Consumption: Result.NGrams is a range-over-func iterator decoding
// one n-gram at a time; TopK and Longest select with a bounded
// min-heap in O(k) memory rather than materializing the result; Lookup
// stops at its first match.
//
// # Persistence and serving
//
// A Result can outlive its process: Result.Save persists it as a
// sharded on-disk index — globally sorted records in the shuffle's
// block-framed, front-coded, CRC-checked run format, plus the corpus
// dictionary, precomputed top-k records, and a checksummed manifest —
// and OpenIndex reopens it with answers byte-identical to the live
// Result's:
//
//	if err := result.Save("/data/books-idx"); err != nil { ... }
//	index, err := ngramstats.OpenIndex("/data/books-idx")
//	if err != nil { ... }
//	defer index.Close()
//	ng, found, err := index.Lookup("new york")
//	extensions, err := index.Prefix("new york", 10)
//	top, err := index.TopK(25)
//
// An Index is built for serving: all state is immutable after open, a
// point lookup reads exactly one shard block (found by binary search
// over the manifest's shard ranges and the shard footer's first-key
// index), a decoded-block LRU cache keeps hot blocks resident, and any
// number of goroutines may query concurrently without locking. Index
// adds Prefix — every indexed phrase extending a word sequence — which
// the sorted layout serves as a bounded range scan. TopK up to the
// saved precomputation depth (SaveOptions.TopDepth) never scans.
// Damage to any index file — truncation, bit flips, missing files —
// surfaces as an error wrapping index.ErrCorrupt or
// extsort.ErrCorruptRun, never as silently wrong statistics.
//
// An index directory can be rewritten in place without disturbing its
// readers: SaveOptions.Replace stages the new index in a generation
// subdirectory and swaps the manifest atomically, so the directory is
// openable at every instant and an Index opened before the swap keeps
// answering from its generation. Close is drain-aware — queries in
// flight finish normally and the files close when the last one ends,
// while queries started after Close fail with ErrIndexClosed. These
// two properties are what the serving daemon's zero-downtime reload is
// built from.
//
// The cmd/ngramsd daemon serves one or more indexes over a versioned
// HTTP API (/v1/lookup, /v1/prefix, /v1/topk, batched POST /v1/query,
// /v1/lm/score, /v1/lm/predict, POST /v1/admin/reload, /healthz,
// /metrics), hot-swaps to rewritten indexes (-watch or the admin
// endpoint) with zero dropped requests, and sheds excess load per
// endpoint with 429 + Retry-After. cmd/ngrams can save (-save) or
// compute-and-serve (-serve) directly.
//
// # Incremental maintenance (LSM chains)
//
// A saved index need not be rebuilt to grow. AppendDelta counts a
// batch of new documents with the exact same job — restricted to just
// those documents, so the cost is O(new documents) — and links the
// result to the saved index as a delta generation of an LSM chain
// (internal/lsm): the chain manifest (CHAIN.json, checksummed) orders
// the base index and its deltas, delta dictionaries are seeded from
// the previous generation so term identifiers stay stable, and
// OpenIndex serves the chain transparently through a merge-on-read
// view whose every answer equals a from-scratch rebuild over all
// documents. CompactIndex merges base + deltas back into a single
// base that is byte-identical — dictionary, shard files, precomputed
// top records — to that rebuild, committing via an atomic manifest
// swap (a crash leaves the previous chain intact and queryable).
//
//	stats, err := ngramstats.AppendDelta(ctx, "/data/books-idx", newDocs, ngramstats.AppendOptions{})
//	// stats.Counters["MAP_INPUT_RECORDS"] == len(newDocs): O(new documents)
//	cstats, err := ngramstats.CompactIndex("/data/books-idx", ngramstats.CompactOptions{})
//
// Appending requires the base to have been computed with
// MinFrequency 1 and no maximal/closed selection — the invariants
// under which per-generation counts merge losslessly. On the command
// line, ngrams -append / -compact / -open drive the same cycle, and
// ngramsd -incremental turns live reconciliation into appends with a
// background compactor (-compact-deltas, -compact-ratio,
// -compact-interval; POST /v1/admin/compact on demand).
//
// # Live ingestion and approximate counting
//
// The batch methods need the whole corpus before anything can be
// counted. NewStreamIngester is the streaming companion: documents are
// folded one at a time into a per-order count-min sketch (conservative
// update, safe for concurrent use without locking on the hot path) and
// are queryable immediately. Estimates are one-sided — never below the
// true count of the ingested stream — and exceed it by at most
// ceil(ε·N) with probability 1−δ per phrase, where N is the number of
// n-gram occurrences at that order (IngestOptions.Epsilon and Delta;
// the sketch is sized width = ceil(e/ε), depth = ceil(ln(1/δ))). A
// top-k heap per order tracks heavy hitters.
//
//	si, err := ngramstats.NewStreamIngester(ngramstats.IngestOptions{
//		Epsilon: 1e-4, Delta: 0.01, MaxLength: 3,
//	})
//	if err != nil { ... }
//	if err := si.Ingest(ngramstats.Document{Text: "a rose is a rose"}); err != nil { ... }
//	ac, ok := si.Estimate("a rose") // one-sided; ac.Bound states the error
//	hot := si.TopK(25)
//
// The sketch is an accelerator, not a replacement: BeginReconcile
// freezes the accumulated documents and hands back a Reconcile whose
// Corpus runs them through the standard corpus build, so the exact
// MapReduce job over it produces results byte-identical to a batch run
// over the same documents. Commit then drops the counted sketch delta
// (documents ingested during the reconciliation remain counted in a
// fresh delta); Abort folds the delta back. WriteSnapshot persists the
// sketch in a CRC-checksummed format mergeable across processes.
//
// cmd/ngramsd wires this into the daemon as -ingest: POST /v1/ingest
// accepts documents, GET /v1/approx/lookup and /v1/approx/topk answer
// with approx:true and stated bounds, and a reconciliation loop
// (-reconcile-every, or POST /v1/admin/reconcile) hot-swaps the exact
// index in with zero dropped requests. cmd/ngrams -sketch is the
// one-pass command-line variant.
//
// # Language models
//
// NewLanguageModel trains an n-gram language model from a live Result;
// NewLanguageModelFromIndex trains the identical model from a saved
// index by streaming its records through the persisted dictionary — no
// recomputation, and the index may be closed once the model is built:
//
//	index, err := ngramstats.OpenIndex("/data/books-idx")
//	if err != nil { ... }
//	lm, err := ngramstats.NewLanguageModelFromIndex(index, 3)
//	if err != nil { ... }
//	index.Close()
//	logp := lm.LogProb([]string{"the", "new", "york", "times"}) // Katz back-off
//	next := lm.Predict([]string{"new", "york"}, 5)              // stupid backoff
//
// Score, Predict, and Generate use stupid backoff (Brants et al.);
// LogProb uses Katz back-off with Good-Turing discounting and returns
// true log-probabilities. This is what ngramsd -lm exposes over
// /v1/lm/score and /v1/lm/predict.
//
// # Performance tuning
//
// The defaults are sized for a corpus that fits one machine
// comfortably; four knobs cover most deviations from that:
//
//   - BuilderOptions.MemoryBudget bounds how many encoded documents the
//     corpus builder keeps resident before spilling them to a temporary
//     shard (default 256 MiB). Lower it under memory pressure — spilled
//     documents cost one sequential write plus one sequential re-read
//     at Finish, nothing more.
//   - Options.ShuffleMemory bounds each map task's in-memory sort
//     buffers; past it the largest buffer sorts, front-codes, and
//     spills as a run file. Raising it means fewer, larger runs —
//     less spill I/O in the map phase and a lower merge fan-in in the
//     reduce phase. Raising it is the first lever when a job is
//     disk-bound.
//   - Options.MapSlots and Options.ReduceSlots set task parallelism
//     (default GOMAXPROCS). More reduce slots also mean more
//     partitions, so each reducer merges and aggregates less data.
//     When reduce fan-in (runs per partition) reaches 8 and spare CPUs
//     exist, the k-way merge itself additionally fans out across
//     goroutines — automatic, byte-identical output.
//   - Options.Codec selects the run-file compression. The default raw
//     front-coding already removes most redundancy from sorted
//     SUFFIX-σ keys; CodecFlate trades CPU for bytes and pays off
//     mainly for NAÏVE/APRIORI value shapes or genuinely slow disks.
//
// On the serving side, ngramsd -cache-blocks (index.Options via the
// library) sizes the per-index decoded-block LRU — raise it until the
// hot key range stays resident (each block is ~64 KiB decoded); full
// scans bypass the cache, so scans never evict the hot set.
//
// PERFORMANCE.md in the repository root walks the whole cost model —
// map spill, seal, shuffle format, merge, index — with profiling
// how-tos and the benchmark regression gate.
//
// # Quick start
//
//	builder := ngramstats.NewCorpusBuilder("demo", ngramstats.BuilderOptions{})
//	if err := builder.Add(ngramstats.Document{Text: "a rose is a rose is a rose"}); err != nil { ... }
//	corpus, err := builder.Finish()
//	if err != nil { ... }
//
//	job, err := ngramstats.Start(ctx, corpus, ngramstats.Options{
//		MinFrequency: 2,
//		MaxLength:    3,
//	})
//	if err != nil { ... }
//	// optional: poll job.Progress() while it runs
//	result, err := job.Wait()
//	if err != nil { ... }
//	defer result.Release()
//
//	for ng, err := range result.NGrams() {
//		if err != nil { ... }
//		fmt.Printf("%6d  %s\n", ng.Frequency, ng.Text)
//	}
//
// # Migrating from the batch-and-materialize API
//
// Old calls map directly onto the streaming surface; all of them still
// work, implemented on the streaming path:
//
//   - FromText(name, docs, years) → NewCorpusBuilder, Add(Document{...}),
//     Finish — or FromDocuments for an iterator source;
//   - Count(ctx, c, opts) → Start(ctx, c, opts) then Job.Wait (Count
//     itself remains and does exactly that);
//   - Options.Logf → Job.Progress / Job.Counters for structured live
//     progress (Logf still emits log lines);
//   - Result.All + sorting → Result.TopK / Result.Longest (now
//     memory-bounded), or range over Result.NGrams;
//   - Result.Each(fn) → for ng, err := range Result.NGrams().
//
// Beyond plain counting, SUFFIX-σ supports restricting output to
// maximal or closed n-grams and aggregations beyond occurrence counting
// (per-year time series, per-document inverted indexes) — the
// extensions of Section VI of the paper.
//
// See the examples directory for complete programs, including the
// paper's two evaluation use cases (language-model training and long
// n-gram text analytics) and the time-series extension.
package ngramstats
