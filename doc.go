// Package ngramstats computes n-gram statistics over document
// collections with MapReduce-style distributed data processing, as
// described in:
//
//	Klaus Berberich, Srikanta Bedathur.
//	"Computing n-Gram Statistics in MapReduce." EDBT 2013.
//
// Given a collection of documents, a minimum collection frequency τ and
// a maximum length σ, the library identifies every n-gram (contiguous
// sequence of words, respecting sentence boundaries) occurring at least
// τ times with at most σ words, together with its exact number of
// occurrences. Four algorithms are provided:
//
//   - MethodNaive: word counting extended to all n-grams (Algorithm 1);
//   - MethodAprioriScan: one pruned scan per n-gram length, using the
//     APRIORI principle (Algorithm 2);
//   - MethodAprioriIndex: builds a positional inverted index and joins
//     posting lists for longer n-grams (Algorithm 3);
//   - MethodSuffixSigma: the paper's contribution — a single job that
//     sorts truncated suffixes in reverse lexicographic order and
//     aggregates with two stacks (Algorithm 4). It dominates the
//     alternatives for long and/or infrequent n-grams and matches them
//     elsewhere.
//
// The MapReduce substrate is an in-process runtime faithful to Hadoop's
// programming model (mappers, combiners, partitioners, sort
// comparators, reducers, counters, slot-bounded parallelism, spill-to-
// disk shuffle), so the same algorithm structure, data movement, and
// measures the paper reports are observable locally via Result
// counters.
//
// Beyond plain counting, SUFFIX-σ supports restricting output to
// maximal or closed n-grams and aggregations beyond occurrence counting
// (per-year time series, per-document inverted indexes) — the
// extensions of Section VI of the paper.
//
// # Quick start
//
//	corpus, err := ngramstats.FromText("demo", []string{
//		"a rose is a rose is a rose",
//	}, nil)
//	if err != nil { ... }
//	result, err := ngramstats.Count(ctx, corpus, ngramstats.Options{
//		MinFrequency: 2,
//		MaxLength:    3,
//	})
//	if err != nil { ... }
//	for _, ng := range result.TopK(10) {
//		fmt.Printf("%6d  %s\n", ng.Frequency, ng.Text)
//	}
//
// See the examples directory for complete programs, including the
// paper's two evaluation use cases (language-model training and long
// n-gram text analytics) and the time-series extension.
package ngramstats
