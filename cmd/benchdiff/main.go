// Command benchdiff compares `go test -bench` output against a
// checked-in baseline and fails when performance regresses beyond a
// threshold. It is the CI benchmark-regression gate.
//
// Usage:
//
//	go test -run='^$' -bench=. -count=5 ./... | benchdiff -baseline BENCH_BASELINE.json
//	go test -run='^$' -bench=. -count=5 ./... | benchdiff -baseline BENCH_BASELINE.json -update
//
// Each benchmark's ns/op is reduced to the minimum across -count
// repetitions (the least-noisy estimator of the code's true cost); the
// gate is the geometric mean of the current/baseline ratios across all
// benchmarks present in both sets, so a single noisy benchmark cannot
// fail the build but a broad slowdown will. Individual regressions
// beyond the threshold are listed either way. New benchmarks (absent
// from the baseline) and retired ones are reported but never fail the
// gate; refresh the baseline with -update when benchmarks or expected
// performance change intentionally.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the checked-in performance reference.
type Baseline struct {
	// Note documents how to refresh the file.
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// its minimum ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches `go test -bench` result lines:
//
//	BenchmarkName-8    100    123456 ns/op    4.5 MB/s ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op`)

// parseBench extracts the minimum ns/op per benchmark name from go
// test -bench output.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

// geomean returns the geometric mean of xs (1.0 for an empty slice).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1.0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// compare evaluates current against baseline and renders a report.
// It returns the geomean ratio over benchmarks common to both.
func compare(w io.Writer, baseline, current map[string]float64, threshold float64) (float64, bool) {
	var names []string
	for name := range current {
		if _, ok := baseline[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var ratios []float64
	fmt.Fprintf(w, "%-70s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, name := range names {
		ratio := current[name] / baseline[name]
		ratios = append(ratios, ratio)
		marker := ""
		if ratio > threshold {
			marker = "  << regression"
		}
		fmt.Fprintf(w, "%-70s %14.0f %14.0f %7.3fx%s\n", name, baseline[name], current[name], ratio, marker)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(w, "%-70s %14s %14.0f   (new, not gated)\n", name, "-", current[name])
		}
	}
	for name := range baseline {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(w, "%-70s %14.0f %14s   (missing from current run)\n", name, baseline[name], "-")
		}
	}
	gm := geomean(ratios)
	ok := gm <= threshold
	if len(ratios) == 0 {
		// No overlap between baseline and current means the gate is
		// measuring nothing — a renamed benchmark set must not read as
		// a pass; refresh the baseline instead.
		ok = false
		fmt.Fprintf(w, "\nno benchmarks overlap the baseline — gate cannot evaluate; refresh the baseline with -update\n")
		return gm, ok
	}
	fmt.Fprintf(w, "\ngeomean ratio over %d benchmarks: %.3fx (threshold %.2fx) — %s\n",
		len(ratios), gm, threshold, map[bool]string{true: "OK", false: "REGRESSION"}[ok])
	return gm, ok
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON file")
	inputPath := flag.String("input", "-", "bench output file ('-' for stdin)")
	threshold := flag.Float64("threshold", 1.15, "maximum allowed geomean current/baseline ratio")
	update := flag.Bool("update", false, "rewrite the baseline from the current run instead of comparing")
	note := flag.String("note", "", "note stored in the baseline on -update")
	flag.Parse()

	in := os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: parse input:", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in input")
		os.Exit(2)
	}

	if *update {
		b := Baseline{Note: *note, Benchmarks: current}
		if b.Note == "" {
			b.Note = "min ns/op per benchmark; refresh with: go test -run='^$' -bench=<gated set> -count=5, then benchdiff -update"
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *baselinePath, len(current))
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var baseline Baseline
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: parse baseline:", err)
		os.Exit(2)
	}
	if _, ok := compare(os.Stdout, baseline.Benchmarks, current, *threshold); !ok {
		os.Exit(1)
	}
}
