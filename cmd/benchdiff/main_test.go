package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ngramstats
BenchmarkFig7ScalingSlots/slots=1-8         	      18	  61000000 ns/op	        123 records/op
BenchmarkFig7ScalingSlots/slots=1-8         	      20	  58000000 ns/op	        123 records/op
BenchmarkFig7ScalingSlots/slots=2-8         	      20	  59500000 ns/op
BenchmarkSortInMemory   	     500	   2400000 ns/op
BenchmarkSortInMemory   	     480	   2500000 ns/op
BenchmarkEmitRecord-4 	 5000000	       251.5 ns/op
PASS
ok  	ngramstats	12.3s
`

func TestParseBenchTakesMinAndStripsProcs(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFig7ScalingSlots/slots=1": 58000000,
		"BenchmarkFig7ScalingSlots/slots=2": 59500000,
		"BenchmarkSortInMemory":             2400000,
		"BenchmarkEmitRecord":               251.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean(nil); g != 1.0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
}

func TestCompareGate(t *testing.T) {
	baseline := map[string]float64{"A": 100, "B": 100, "C": 100}

	// Broad slowdown beyond threshold fails.
	var sb strings.Builder
	gm, ok := compare(&sb, baseline, map[string]float64{"A": 120, "B": 120, "C": 120}, 1.15)
	if ok || math.Abs(gm-1.2) > 1e-9 {
		t.Fatalf("broad 20%% regression passed the gate (gm=%v ok=%v)", gm, ok)
	}

	// One noisy benchmark amid stable ones passes (geomean gating).
	gm, ok = compare(&sb, baseline, map[string]float64{"A": 130, "B": 100, "C": 100}, 1.15)
	if !ok {
		t.Fatalf("single noisy benchmark failed the gate (gm=%v)", gm)
	}

	// Improvements pass.
	if _, ok = compare(&sb, baseline, map[string]float64{"A": 80, "B": 90, "C": 100}, 1.15); !ok {
		t.Fatal("improvement failed the gate")
	}

	// New and retired benchmarks are reported but not gated.
	out := &strings.Builder{}
	_, ok = compare(out, baseline, map[string]float64{"A": 100, "B": 100, "D": 999}, 1.15)
	if !ok {
		t.Fatal("new/retired benchmarks affected the gate")
	}
	if !strings.Contains(out.String(), "new, not gated") || !strings.Contains(out.String(), "missing from current run") {
		t.Fatalf("report does not mention new/retired benchmarks:\n%s", out.String())
	}

	// Zero overlap (renamed benchmark set) must FAIL, not silently pass
	// with an empty geomean.
	if _, ok = compare(&sb, baseline, map[string]float64{"X": 1, "Y": 2}, 1.15); ok {
		t.Fatal("disjoint benchmark sets passed the gate")
	}
}
