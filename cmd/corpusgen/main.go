// Command corpusgen builds corpora and persists them as binary shards
// plus a dictionary file, mirroring the paper's pre-processed corpus
// layout. It generates the synthetic evaluation corpora (the NYT-like
// and ClueWeb09-B-like stand-ins of DESIGN.md) or ingests real text
// files through the streaming CorpusBuilder, one document per file,
// spilling encoded documents to disk past the memory budget.
//
// Usage:
//
//	corpusgen -dataset nyt -docs 5000 -out /data/nyt
//	corpusgen -dataset cw  -docs 15000 -out /data/cw -shards 256
//	corpusgen -dataset text -out /data/books -web=false books/*.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ngramstats"
)

func main() {
	var (
		dataset = flag.String("dataset", "nyt", "corpus flavour: nyt | cw | text (ingest the file arguments)")
		docs    = flag.Int("docs", 2000, "number of documents (nyt/cw)")
		seed    = flag.Int64("seed", 42, "generation seed (nyt/cw)")
		out     = flag.String("out", "", "output directory (required)")
		shards  = flag.Int("shards", 16, "number of binary shard files")
		web     = flag.Bool("web", false, "text mode: apply boilerplate filtering")
		mem     = flag.Int("mem", 0, "text mode: builder memory budget in MiB (0 = default)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -out is required")
		os.Exit(2)
	}

	var corpus *ngramstats.Corpus
	var err error
	switch *dataset {
	case "nyt":
		corpus = ngramstats.SyntheticNYT(*docs, *seed)
	case "cw":
		corpus = ngramstats.SyntheticCW(*docs, *seed)
	case "text":
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "corpusgen: -dataset text needs input file arguments")
			os.Exit(2)
		}
		corpus, err = fromFiles(flag.Args(), *web, *mem<<20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "corpusgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if err := corpus.Save(*out, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
	st := corpus.Stats()
	fmt.Printf("wrote %s: %d documents, %d sentences, %d term occurrences, %d distinct terms\n",
		*out, st.Documents, st.Sentences, st.TermOccurrences, st.DistinctTerms)
	fmt.Printf("sentence length: mean %.2f, sd %.2f\n", st.SentenceLenMean, st.SentenceLenSD)
}

// fromFiles streams one document per file through the corpus builder;
// only one file's raw text is resident at a time.
func fromFiles(paths []string, web bool, budget int) (*ngramstats.Corpus, error) {
	return ngramstats.FromDocuments(context.Background(), "text",
		ngramstats.FileDocuments(paths, web),
		ngramstats.BuilderOptions{MemoryBudget: budget})
}
