// Command corpusgen generates the synthetic evaluation corpora (the
// NYT-like and ClueWeb09-B-like stand-ins of DESIGN.md) and persists
// them as binary shards plus a dictionary file, mirroring the paper's
// pre-processed corpus layout.
//
// Usage:
//
//	corpusgen -dataset nyt -docs 5000 -out /data/nyt
//	corpusgen -dataset cw  -docs 15000 -out /data/cw -shards 256
package main

import (
	"flag"
	"fmt"
	"os"

	"ngramstats"
)

func main() {
	var (
		dataset = flag.String("dataset", "nyt", "corpus flavour: nyt | cw")
		docs    = flag.Int("docs", 2000, "number of documents")
		seed    = flag.Int64("seed", 42, "generation seed")
		out     = flag.String("out", "", "output directory (required)")
		shards  = flag.Int("shards", 16, "number of binary shard files")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -out is required")
		os.Exit(2)
	}

	var corpus *ngramstats.Corpus
	switch *dataset {
	case "nyt":
		corpus = ngramstats.SyntheticNYT(*docs, *seed)
	case "cw":
		corpus = ngramstats.SyntheticCW(*docs, *seed)
	default:
		fmt.Fprintf(os.Stderr, "corpusgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if err := corpus.Save(*out, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
	st := corpus.Stats()
	fmt.Printf("wrote %s: %d documents, %d sentences, %d term occurrences, %d distinct terms\n",
		*out, st.Documents, st.Sentences, st.TermOccurrences, st.DistinctTerms)
	fmt.Printf("sentence length: mean %.2f, sd %.2f\n", st.SentenceLenMean, st.SentenceLenSD)
}
