// Command experiments regenerates every table and figure of the
// paper's evaluation (Section VII) on the synthetic NYT-like and
// ClueWeb09-B-like corpora:
//
//	table1    dataset characteristics (Table I)
//	fig2      output characteristics histogram (Figure 2)
//	fig3      language-model & analytics use cases (Figure 3)
//	fig4      varying minimum collection frequency τ (Figure 4)
//	fig5      varying maximum length σ (Figure 5)
//	fig6      scaling the datasets 25–100 % (Figure 6)
//	fig7      scaling computational resources / slots (Figure 7)
//	ablation  design-choice ablations (Sections IV & V)
//	all       everything above
//
// Parameters are scaled-down counterparts of the paper's: corpus sizes
// shrink by ~3 orders of magnitude, and τ values shrink accordingly so
// that the output-size regimes (and therefore the method trade-offs)
// match. See EXPERIMENTS.md for the mapping and recorded results.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig4 -nyt 2000 -cw 6000 -csv out/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ngramstats/internal/core"
	"ngramstats/internal/corpus"
	"ngramstats/internal/extsort"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/sequence"
	"ngramstats/internal/stats"
	"ngramstats/internal/synth"
)

type config struct {
	nytDocs  int
	cwDocs   int
	seed     int64
	slots    int
	reducers int
	splits   int
	tempDir  string
	csvDir   string
	codec    extsort.Codec
	runner   mapreduce.Runner
	verbose  bool
}

func main() {
	var cfg config
	exp := flag.String("exp", "all", "experiment: table1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | ablation | all")
	flag.IntVar(&cfg.nytDocs, "nyt", 2000, "NYT-like corpus size in documents")
	flag.IntVar(&cfg.cwDocs, "cw", 6000, "CW-like corpus size in documents")
	flag.Int64Var(&cfg.seed, "seed", 42, "corpus generation seed")
	flag.IntVar(&cfg.slots, "slots", 4, "map/reduce slots (except fig7, which sweeps them)")
	flag.IntVar(&cfg.reducers, "reducers", 8, "reduce partitions per job")
	flag.IntVar(&cfg.splits, "splits", 16, "map tasks over the corpus")
	flag.StringVar(&cfg.tempDir, "tmp", "", "scratch directory for shuffle spills")
	flag.StringVar(&cfg.csvDir, "csv", "", "directory for CSV output (optional)")
	codec := flag.String("codec", "raw", "shuffle block codec: raw | flate (per-block DEFLATE on top of front-coding)")
	runner := flag.String("runner", "", "execution backend address: local (in-process tasks) | process (one worker OS process per task) | net://host:port[?spawn=N] (HTTP coordinator with leased net workers); default honors $NGRAMS_RUNNER")
	workers := flag.Int("workers", 0, "max concurrent worker processes with a worker-based -runner (0 = backend default)")
	retries := flag.Int("retries", 0, "per-task attempt budget with a worker-based -runner (0 = default of 2)")
	flag.BoolVar(&cfg.verbose, "v", false, "log per-job progress")
	quick := flag.Bool("quick", false, "small corpora for a fast smoke run")
	nytDir := flag.String("nytdir", "", "load the NYT-like corpus from a corpusgen directory instead of generating")
	cwDir := flag.String("cwdir", "", "load the CW-like corpus from a corpusgen directory instead of generating")
	mapreduce.RunWorkerIfRequested() // hidden worker mode for -runner=process re-execs
	flag.Parse()

	if *quick {
		cfg.nytDocs, cfg.cwDocs = 400, 900
	}
	switch *codec {
	case "raw":
		cfg.codec = extsort.CodecRaw
	case "flate":
		cfg.codec = extsort.CodecFlate
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown -codec %q (want raw or flate)\n", *codec)
		os.Exit(2)
	}
	if name := *runner; name != "" || *workers > 0 || *retries > 0 {
		if name == "" {
			// -workers / -retries without -runner still apply, to the
			// backend named by NGRAMS_RUNNER (empty means local).
			name = os.Getenv(mapreduce.RunnerEnv)
		}
		r, err := mapreduce.NewRunner(name, *workers, *retries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		cfg.runner = r
		fmt.Printf("execution backend: %v\n", r)
	}

	start := time.Now()
	var nyt, cw *corpus.Collection
	var err error
	if *nytDir != "" {
		if nyt, err = corpus.ReadShards("NYT", *nytDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded NYT-like corpus from %s (%d docs)\n", *nytDir, len(nyt.Docs))
	} else {
		nyt = synth.Generate(synth.NYTLike(cfg.nytDocs, cfg.seed))
	}
	if *cwDir != "" {
		if cw, err = corpus.ReadShards("CW", *cwDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded CW-like corpus from %s (%d docs)\n", *cwDir, len(cw.Docs))
	} else {
		cw = synth.Generate(synth.CWLike(cfg.cwDocs, cfg.seed+1))
	}
	fmt.Printf("corpora ready in %v (NYT %d docs, CW %d docs)\n\n",
		time.Since(start).Round(time.Millisecond), len(nyt.Docs), len(cw.Docs))

	ctx := context.Background()
	run := func(name string, fn func(context.Context, *config, *corpus.Collection, *corpus.Collection) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("========== %s ==========\n", name)
		t0 := time.Now()
		if err := fn(ctx, &cfg, nyt, cw); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", table1)
	run("fig2", fig2)
	run("fig3", fig3)
	run("fig4", fig4)
	run("fig5", fig5)
	run("fig6", fig6)
	run("fig7", fig7)
	run("ablation", ablation)
}

// params builds core.Params for an experiment run.
func (c *config) params(tau int64, sigma, slots int) core.Params {
	p := core.Params{
		Tau:          tau,
		Sigma:        sigma,
		NumReducers:  c.reducers,
		MapSlots:     slots,
		ReduceSlots:  slots,
		InputSplits:  c.splits,
		TempDir:      c.tempDir,
		ShuffleCodec: c.codec,
		Runner:       c.runner,
		Combiner:     true,
	}
	if c.verbose {
		p.Progress = mapreduce.LogProgress(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		})
	}
	return p
}

// measure runs one method and converts the run into a measurement.
func measure(ctx context.Context, col *corpus.Collection, m core.Method, p core.Params, extra stats.Measurement) (stats.Measurement, error) {
	run, err := core.Compute(ctx, col, m, p)
	if err != nil {
		return stats.Measurement{}, fmt.Errorf("%s on %s: %w", m, col.Name, err)
	}
	out := extra
	out.Dataset = col.Name
	out.Method = string(m)
	out.Tau = p.Tau
	out.Sigma = p.Sigma
	out.Wallclock = run.Wallclock
	out.Bytes = run.BytesTransferred()
	out.ShuffleBytes = run.ShuffleBytesWritten()
	out.Records = run.RecordsTransferred()
	out.Jobs = run.Jobs
	out.Output = run.Result.Len()
	if err := run.Result.Release(); err != nil {
		return out, err
	}
	return out, nil
}

func writeCSV(cfg *config, name string, t *stats.Table) error {
	if cfg.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(cfg.csvDir, name+".csv")
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// table1 prints the dataset characteristics (Table I).
func table1(ctx context.Context, cfg *config, nyt, cw *corpus.Collection) error {
	fmt.Printf("%-28s %15s %15s\n", "", "NYT", "CW")
	n, c := nyt.Stats(), cw.Stats()
	row := func(label string, a, b any) { fmt.Printf("%-28s %15v %15v\n", label, a, b) }
	row("# documents", n.Documents, c.Documents)
	row("# term occurrences", n.TermOccurrences, c.TermOccurrences)
	row("# distinct terms", n.DistinctTerms, c.DistinctTerms)
	row("# sentences", n.Sentences, c.Sentences)
	row("sentence length (mean)", fmt.Sprintf("%.2f", n.SentenceLenMean), fmt.Sprintf("%.2f", c.SentenceLenMean))
	row("sentence length (stddev)", fmt.Sprintf("%.2f", n.SentenceLenSD), fmt.Sprintf("%.2f", c.SentenceLenSD))
	fmt.Printf("\npaper: NYT 1.83M docs / 1.05G occurrences; CW 50.2M docs / 21.4G occurrences\n")
	fmt.Printf("paper: sentence length NYT 18.96±14.05, CW 17.02±17.56\n")
	return nil
}

// fig2 computes output characteristics: all n-grams with cf ≥ 5,
// σ = ∞, bucketed by log10 length × log10 frequency.
func fig2(ctx context.Context, cfg *config, nyt, cw *corpus.Collection) error {
	for _, col := range []*corpus.Collection{nyt, cw} {
		p := cfg.params(5, core.Unbounded, cfg.slots)
		t0 := time.Now()
		run, err := core.Compute(ctx, col, core.SuffixSigma, p)
		if err != nil {
			return err
		}
		buckets := stats.NewBucket2D()
		longest := 0
		var longestText string
		err = run.Result.Each(func(s sequence.Seq, cf int64) error {
			buckets.Add(len(s), cf)
			if len(s) > longest {
				longest = len(s)
				if col.Dict != nil {
					longestText = col.Dict.Format(s)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("[%s] n-grams with cf >= 5 (sigma = inf): %d total, computed in %v\n",
			col.Name, buckets.Total(), time.Since(t0).Round(time.Millisecond))
		fmt.Println(buckets.String())
		if longestText != "" {
			if len(longestText) > 120 {
				longestText = longestText[:120] + "..."
			}
			fmt.Printf("longest frequent n-gram (%d terms): %s\n\n", longest, longestText)
		}
		if err := run.Result.Release(); err != nil {
			return err
		}
	}
	return nil
}

// useCases returns the scaled-down parameters of the two Figure 3 use
// cases per dataset.
func useCases(name string) (lmTau, anTau int64) {
	if name == "NYT" {
		return 3, 5 // paper: τ=10 (LM), τ=100 (analytics) at 1.05G tokens
	}
	return 5, 10 // paper: τ=100 (LM), τ=1000 (analytics) at 21.4G tokens
}

// fig3 runs the two use cases: language model (σ=5, low τ) and text
// analytics (σ=100, higher τ).
func fig3(ctx context.Context, cfg *config, nyt, cw *corpus.Collection) error {
	table := stats.NewTable("Figure 3: use cases", "usecase")
	for _, col := range []*corpus.Collection{nyt, cw} {
		lmTau, anTau := useCases(col.Name)
		for _, uc := range []struct {
			tau   int64
			sigma int
			label string
		}{
			{lmTau, 5, "language model"},
			{anTau, 100, "text analytics"},
		} {
			for _, m := range core.Methods() {
				meas, err := measure(ctx, col, m, cfg.params(uc.tau, uc.sigma, cfg.slots), stats.Measurement{Slots: cfg.slots})
				if err != nil {
					return err
				}
				table.Add(meas)
				fmt.Printf("  [%s] %-16s %-14s τ=%-5d σ=%-4d %10v  %12d bytes %12d shuffle-B %10d records %3d jobs %8d n-grams\n",
					col.Name, uc.label, m, uc.tau, uc.sigma,
					meas.Wallclock.Round(time.Millisecond), meas.Bytes, meas.ShuffleBytes, meas.Records, meas.Jobs, meas.Output)
			}
		}
	}
	fmt.Println()
	fmt.Println(table.Render("wallclock"))
	printSpeedups(table)
	return writeCSV(cfg, "fig3", table)
}

func printSpeedups(table *stats.Table) {
	for _, base := range []string{string(core.Naive), string(core.AprioriScan), string(core.AprioriIndex)} {
		sp := table.Speedup("wallclock", base, string(core.SuffixSigma))
		for k, v := range sp {
			fmt.Printf("speedup of suffix-sigma over %s at %s: %.1fx\n", base, k, v)
		}
	}
}

// fig4 varies the minimum collection frequency τ at σ=5.
func fig4(ctx context.Context, cfg *config, nyt, cw *corpus.Collection) error {
	taus := map[string][]int64{
		"NYT": {2, 5, 10, 50, 100},   // paper: 10 … 100000
		"CW":  {5, 10, 50, 100, 250}, // paper: 100 … 100000
	}
	table := stats.NewTable("Figure 4: varying minimum collection frequency (sigma=5)", "tau")
	for _, col := range []*corpus.Collection{nyt, cw} {
		for _, tau := range taus[col.Name] {
			for _, m := range core.Methods() {
				meas, err := measure(ctx, col, m, cfg.params(tau, 5, cfg.slots), stats.Measurement{Slots: cfg.slots})
				if err != nil {
					return err
				}
				table.Add(meas)
			}
			fmt.Printf("  [%s] τ=%d done\n", col.Name, tau)
		}
	}
	fmt.Println(table.Render("wallclock"))
	fmt.Println(table.Render("bytes"))
	fmt.Println(table.Render("shuffle"))
	fmt.Println(table.Render("records"))
	return writeCSV(cfg, "fig4", table)
}

// fig5 varies the maximum length σ at the analytics τ.
func fig5(ctx context.Context, cfg *config, nyt, cw *corpus.Collection) error {
	sigmas := []int{5, 10, 50, 100}
	table := stats.NewTable("Figure 5: varying maximum length", "sigma")
	for _, col := range []*corpus.Collection{nyt, cw} {
		_, anTau := useCases(col.Name)
		for _, sigma := range sigmas {
			for _, m := range core.Methods() {
				meas, err := measure(ctx, col, m, cfg.params(anTau, sigma, cfg.slots), stats.Measurement{Slots: cfg.slots})
				if err != nil {
					return err
				}
				table.Add(meas)
			}
			fmt.Printf("  [%s] σ=%d done\n", col.Name, sigma)
		}
	}
	fmt.Println(table.Render("wallclock"))
	fmt.Println(table.Render("bytes"))
	fmt.Println(table.Render("shuffle"))
	fmt.Println(table.Render("records"))
	return writeCSV(cfg, "fig5", table)
}

// fig6 scales the datasets: 25/50/75/100 % random document samples.
func fig6(ctx context.Context, cfg *config, nyt, cw *corpus.Collection) error {
	fractions := []int{25, 50, 75, 100}
	table := stats.NewTable("Figure 6: scaling the datasets (sigma=5)", "fraction")
	for _, col := range []*corpus.Collection{nyt, cw} {
		_, anTau := useCases(col.Name)
		for _, f := range fractions {
			sample := col.Sample(float64(f)/100, cfg.seed+int64(f))
			sample.Name = col.Name // group rows under the parent corpus
			for _, m := range core.Methods() {
				meas, err := measure(ctx, sample, m, cfg.params(anTau, 5, cfg.slots),
					stats.Measurement{Slots: cfg.slots, Fraction: f})
				if err != nil {
					return err
				}
				table.Add(meas)
			}
			fmt.Printf("  [%s] %d%% done\n", col.Name, f)
		}
	}
	fmt.Println(table.Render("wallclock"))
	fmt.Println(table.Render("shuffle"))
	return writeCSV(cfg, "fig6", table)
}

// fig7 scales computational resources: slot sweep on 50 % samples.
// The paper sweeps 16/32/48/64 slots on a 10-node cluster; locally the
// sweep is 1/2/4/8 slot pools on one machine — the same
// diminishing-returns contention shape at smaller scale.
func fig7(ctx context.Context, cfg *config, nyt, cw *corpus.Collection) error {
	slotCounts := []int{1, 2, 4, 8}
	table := stats.NewTable("Figure 7: scaling computational resources (50% samples, sigma=5)", "slots")
	for _, col := range []*corpus.Collection{nyt, cw} {
		_, anTau := useCases(col.Name)
		sample := col.Sample(0.5, cfg.seed)
		sample.Name = col.Name
		for _, slots := range slotCounts {
			for _, m := range core.Methods() {
				meas, err := measure(ctx, sample, m, cfg.params(anTau, 5, slots),
					stats.Measurement{Slots: slots, Fraction: 50})
				if err != nil {
					return err
				}
				table.Add(meas)
			}
			fmt.Printf("  [%s] %d slots done\n", col.Name, slots)
		}
	}
	fmt.Println(table.Render("wallclock"))
	fmt.Println(table.Render("shuffle"))
	return writeCSV(cfg, "fig7", table)
}

// ablation quantifies the design choices the paper calls out:
// reverse-lexicographic two-stack aggregation vs. an in-memory hashmap
// (Section IV), the combiner for NAÏVE (Section V), and document
// splits at large σ (Section V).
func ablation(ctx context.Context, cfg *config, nyt, cw *corpus.Collection) error {
	col := nyt
	_, anTau := useCases(col.Name)

	fmt.Println("[A] suffix-sigma two-stack reducer vs hashmap aggregation (sigma=100)")
	for _, m := range []core.Method{core.SuffixSigma, core.SuffixSigmaNaive} {
		meas, err := measure(ctx, col, m, cfg.params(anTau, 100, cfg.slots), stats.Measurement{})
		if err != nil {
			return err
		}
		fmt.Printf("    %-22s %10v  %10d records  %8d n-grams\n",
			m, meas.Wallclock.Round(time.Millisecond), meas.Records, meas.Output)
	}

	fmt.Println("[B] naive with vs without combiner (sigma=5)")
	for _, combine := range []bool{true, false} {
		p := cfg.params(5, 5, cfg.slots)
		p.Combiner = combine
		run, err := core.Compute(ctx, col, core.Naive, p)
		if err != nil {
			return err
		}
		logical := run.Counters.Get(mapreduce.CounterReduceShuffleBytes)
		fmt.Printf("    combiner=%-5v %10v  map-output %12d bytes  shuffled %12d logical-B %12d wire-B\n",
			combine, run.Wallclock.Round(time.Millisecond), run.BytesTransferred(), logical, run.ShuffleBytesWritten())
		if err := run.Result.Release(); err != nil {
			return err
		}
	}

	fmt.Println("[C] suffix-sigma with vs without document splits (sigma=100)")
	for _, split := range []bool{false, true} {
		p := cfg.params(anTau, 100, cfg.slots)
		p.DocSplit = split
		run, err := core.Compute(ctx, col, core.SuffixSigma, p)
		if err != nil {
			return err
		}
		fmt.Printf("    docsplit=%-5v %10v  %12d bytes  %10d records  %d jobs\n",
			split, run.Wallclock.Round(time.Millisecond), run.BytesTransferred(),
			run.RecordsTransferred(), run.Jobs)
		if err := run.Result.Release(); err != nil {
			return err
		}
	}
	return nil
}
