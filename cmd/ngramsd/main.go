// Command ngramsd serves persistent n-gram indexes over HTTP: the
// query daemon downstream of a computation saved with ngrams -save or
// Result.Save.
//
// Usage:
//
//	ngramsd -index /data/books-idx
//	ngramsd -addr :8091 -index nyt=/data/nyt-idx -index web=/data/web-idx
//	ngramsd -index /data/books-idx -watch -lm 3
//
// Each -index flag names one index directory, optionally as
// name=path; without a name the directory's base name is used. With a
// single index the name may be omitted from queries:
//
//	curl 'localhost:8091/v1/lookup?q=new+york'
//	curl 'localhost:8091/v1/prefix?q=new&limit=10'
//	curl 'localhost:8091/v1/topk?k=25&index=nyt'
//	curl -d '{"ops":[{"op":"lookup","q":"new york"},{"op":"topk","k":5}]}' localhost:8091/v1/query
//	curl 'localhost:8091/v1/lm/score?q=the+new+york+times'   (with -lm)
//	curl 'localhost:8091/v1/lm/predict?q=new&k=5'            (with -lm)
//	curl -X POST 'localhost:8091/v1/admin/reload'
//	curl 'localhost:8091/healthz'
//	curl 'localhost:8091/metrics'
//
// The pre-/v1 endpoints (/lookup, /prefix, /topk) keep working with
// their original response shapes, marked with a Deprecation header.
//
// Indexes reload without downtime: -watch polls each index's manifest
// and swaps to the rewritten index (Result.Save with Replace) as soon
// as it lands; POST /v1/admin/reload triggers the same swap on demand.
// In-flight queries finish on the generation they started on.
//
// With -ingest NAME the named index additionally accepts live
// documents and answers approximate queries between reconciliations:
//
//	ngramsd -index live=/data/live-idx -ingest live -reconcile-every 10000
//	curl -d '{"docs":[{"text":"the quick brown fox."}]}' localhost:8091/v1/ingest
//	curl 'localhost:8091/v1/approx/lookup?q=quick+brown'
//	curl 'localhost:8091/v1/approx/topk?k=10'
//	curl -X POST 'localhost:8091/v1/admin/reconcile'
//
// The index directory may start empty; it materializes at the first
// reconciliation. -eps and -delta size the count-min sketch behind the
// approximate answers, and -reconcile-every triggers the exact
// MapReduce job automatically once that many documents are pending.
//
// With -incremental, reconciliations after the first append only the
// newly ingested documents to the index as an LSM delta generation
// (cost proportional to the new documents, not the stream) and the
// daemon serves the chain's merged view; -compact-deltas and
// -compact-ratio set the policy under which the background compactor
// merges a chain back into a single base index, checking every
// -compact-interval. POST /v1/admin/compact compacts on demand:
//
//	ngramsd -index live=/data/live-idx -ingest live -incremental \
//	    -reconcile-every 1000 -compact-deltas 4
//	curl -X POST 'localhost:8091/v1/admin/compact'
//
// Without -ingest the daemon is read-only; it serves all indexes
// concurrently either way (including indexes grown offline with
// ngrams -append). Shut it down with SIGINT or SIGTERM (in-flight
// requests drain gracefully).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ngramstats"
	"ngramstats/internal/serving"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("ngramsd: ")

	var specs []string
	addr := flag.String("addr", ":8091", "listen address")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof profiling endpoints on this separate address (e.g. localhost:6060; empty = disabled)")
	cacheBlocks := flag.Int("cache-blocks", 0, "decoded-block cache size per index in blocks (0 = default 128, negative = disabled)")
	watch := flag.Bool("watch", false, "watch index manifests and hot-swap to rewritten indexes automatically")
	watchInterval := flag.Duration("watch-interval", time.Second, "manifest poll interval with -watch")
	lmOrder := flag.Int("lm", 0, "train an n-gram language model of this order per index and enable /v1/lm endpoints (0 = disabled)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent requests per query endpoint before queueing (0 = default)")
	maxQueue := flag.Int("max-queue", 0, "queued requests per query endpoint before shedding (0 = default 2x max-inflight)")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long a queued request waits before being shed with 429 (0 = default)")
	maxLimit := flag.Int("max-limit", 0, "largest accepted prefix limit parameter (0 = default)")
	maxK := flag.Int("max-k", 0, "largest accepted k parameter (0 = default)")
	maxBatch := flag.Int("max-batch", 0, "most operations accepted per /v1/query batch (0 = default)")
	ingest := flag.String("ingest", "", "enable live ingestion into this index name and serve /v1/ingest and /v1/approx endpoints")
	eps := flag.Float64("eps", 0, "sketch error bound factor: estimates exceed true counts by at most eps*N (0 = default 1e-4)")
	delta := flag.Float64("delta", 0, "sketch failure probability: the eps*N bound holds for each key with probability 1-delta (0 = default 0.01)")
	topK := flag.Int("ingest-topk", 0, "heavy hitters tracked per sketched order (0 = default 128)")
	ingestMaxLen := flag.Int("ingest-maxlen", 0, "longest sketched and reconciled n-gram (0 = default 5)")
	reconcileEvery := flag.Int("reconcile-every", 0, "run the exact reconciliation job once this many documents are pending (0 = manual via /v1/admin/reconcile)")
	minFrequency := flag.Int64("min-frequency", 2, "minimum frequency the reconciled exact index keeps (forced to 1 with -incremental)")
	incremental := flag.Bool("incremental", false, "reconcile incrementally: append only newly ingested documents as LSM delta generations instead of rebuilding the index")
	compactDeltas := flag.Int("compact-deltas", 0, "compact a served index chain once it has this many delta generations (0 = default 4 when compaction is enabled)")
	compactRatio := flag.Float64("compact-ratio", 0, "also compact once summed delta records reach this fraction of the base's records (0 = disabled)")
	compactInterval := flag.Duration("compact-interval", 0, "how often the background compactor checks chain manifests (0 = default 10s)")
	flag.Func("index", "index directory to serve, optionally name=path (repeatable)", func(v string) error {
		specs = append(specs, v)
		return nil
	})
	flag.Parse()
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "ngramsd: at least one -index is required")
		flag.Usage()
		os.Exit(2)
	}

	indexes := make(map[string]serving.IndexConfig, len(specs))
	for _, spec := range specs {
		// name=path only when the part before '=' looks like a name: a
		// path separator there means the '=' belongs to a bare path
		// (e.g. -index /data/run=3/idx).
		name, dir, ok := strings.Cut(spec, "=")
		if !ok || strings.ContainsAny(name, `/\`) {
			dir = spec
			name = filepath.Base(filepath.Clean(spec))
		}
		if _, dup := indexes[name]; dup {
			log.Fatalf("duplicate index name %q (use name=path to disambiguate)", name)
		}
		indexes[name] = serving.IndexConfig{Dir: dir, CacheBlocks: *cacheBlocks}
	}

	opts := serving.ServerOptions{
		Indexes:      indexes,
		MaxInflight:  *maxInflight,
		MaxQueue:     *maxQueue,
		QueueTimeout: *queueTimeout,
		MaxLimit:     *maxLimit,
		MaxK:         *maxK,
		MaxBatch:     *maxBatch,
		LMOrder:      *lmOrder,
		Logf:         log.Printf,
	}
	if *watch {
		opts.WatchInterval = *watchInterval
	}
	if *ingest != "" {
		si, err := ngramstats.NewStreamIngester(ngramstats.IngestOptions{
			Epsilon:        *eps,
			Delta:          *delta,
			TopK:           *topK,
			MaxLength:      *ingestMaxLen,
			ReconcileEvery: *reconcileEvery,
		})
		if err != nil {
			log.Fatalf("%v", err)
		}
		tau := *minFrequency
		if *incremental {
			tau = 1 // delta generations merge losslessly only at τ = 1
		}
		opts.Live = &serving.LiveConfig{
			Ingester:    si,
			Index:       *ingest,
			Count:       ngramstats.Options{MinFrequency: tau},
			Incremental: *incremental,
		}
	}
	if *incremental || *compactDeltas > 0 || *compactRatio > 0 {
		cc := &serving.CompactConfig{
			MaxDeltas: *compactDeltas,
			MaxRatio:  *compactRatio,
			Interval:  *compactInterval,
		}
		if cc.MaxDeltas <= 0 && cc.MaxRatio <= 0 {
			cc.MaxDeltas = serving.DefaultCompactDeltas
		}
		if cc.Interval <= 0 {
			cc.Interval = serving.DefaultCompactInterval
		}
		opts.Compact = cc
	}

	srv, err := serving.NewServer(opts)
	if err != nil {
		log.Fatalf("%v", err)
	}
	defer srv.Close()
	for _, name := range srv.Names() {
		log.Printf("serving %q", name)
	}

	if *pprofAddr != "" {
		// Profiling lives on its own listener so the endpoints are never
		// reachable through the query address: bind -pprof to localhost
		// (or a firewalled port) and the serving surface stays unchanged.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *watch {
		go srv.Watch(ctx, *watchInterval)
		log.Printf("watching manifests every %v", *watchInterval)
	}
	if *ingest != "" {
		go srv.ReconcileLoop(ctx)
		iopts := opts.Live.Ingester.Options()
		log.Printf("live ingestion into %q (eps=%g delta=%g maxlen=%d reconcile-every=%d incremental=%v)",
			*ingest, iopts.Epsilon, iopts.Delta, iopts.MaxLength, iopts.ReconcileEvery, *incremental)
	}
	if opts.Compact != nil {
		go srv.CompactLoop(ctx)
		log.Printf("background compaction enabled (deltas>=%d ratio=%g every %v)",
			opts.Compact.MaxDeltas, opts.Compact.MaxRatio, opts.Compact.Interval)
	}

	ready := make(chan string, 1)
	go func() { log.Printf("listening on %s", <-ready) }()
	if err := serving.ListenAndServe(ctx, *addr, srv, ready); err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("shut down cleanly")
}
