// Command ngramsd serves persistent n-gram indexes over HTTP: the
// query daemon downstream of a computation saved with ngrams -save or
// Result.Save.
//
// Usage:
//
//	ngramsd -index /data/books-idx
//	ngramsd -addr :8091 -index nyt=/data/nyt-idx -index web=/data/web-idx
//
// Each -index flag names one index directory, optionally as
// name=path; without a name the directory's base name is used. With a
// single index the name may be omitted from queries:
//
//	curl 'localhost:8091/lookup?q=new+york'
//	curl 'localhost:8091/prefix?q=new&limit=10'
//	curl 'localhost:8091/topk?k=25&index=nyt'
//	curl 'localhost:8091/healthz'
//	curl 'localhost:8091/metrics'
//
// The daemon is read-only and serves all indexes concurrently; shut it
// down with SIGINT or SIGTERM (in-flight requests drain gracefully).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"ngramstats"
	"ngramstats/internal/serving"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("ngramsd: ")

	var specs []string
	addr := flag.String("addr", ":8091", "listen address")
	cacheBlocks := flag.Int("cache-blocks", 0, "decoded-block cache size per index in blocks (0 = default 128, negative = disabled)")
	flag.Func("index", "index directory to serve, optionally name=path (repeatable)", func(v string) error {
		specs = append(specs, v)
		return nil
	})
	flag.Parse()
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "ngramsd: at least one -index is required")
		flag.Usage()
		os.Exit(2)
	}

	indexes := make(map[string]*ngramstats.Index, len(specs))
	for _, spec := range specs {
		// name=path only when the part before '=' looks like a name: a
		// path separator there means the '=' belongs to a bare path
		// (e.g. -index /data/run=3/idx).
		name, dir, ok := strings.Cut(spec, "=")
		if !ok || strings.ContainsAny(name, `/\`) {
			dir = spec
			name = filepath.Base(filepath.Clean(spec))
		}
		if _, dup := indexes[name]; dup {
			log.Fatalf("duplicate index name %q (use name=path to disambiguate)", name)
		}
		ix, err := ngramstats.OpenIndexWith(dir, ngramstats.IndexOptions{CacheBlocks: *cacheBlocks})
		if err != nil {
			log.Fatalf("open index %s: %v", dir, err)
		}
		defer ix.Close()
		indexes[name] = ix
		log.Printf("serving %q: %d n-grams in %d shards (corpus %q)",
			name, ix.Len(), ix.Shards(), ix.Corpus())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serving.New(indexes)
	ready := make(chan string, 1)
	go func() { log.Printf("listening on %s", <-ready) }()
	if err := serving.ListenAndServe(ctx, *addr, srv, ready); err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("shut down cleanly")
}
