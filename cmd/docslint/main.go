// Command docslint enforces the repository's documentation contracts:
//
//   - Flag coverage: every flag a binary prints in its -h usage must be
//     mentioned in README.md, so a new flag cannot ship undocumented.
//   - Relative links: every markdown link in the given docs that points
//     at a repository path must resolve to an existing file.
//
// CI's docs-lint job runs both checks:
//
//	go build -o /tmp/ngrams ./cmd/ngrams && go build -o /tmp/ngramsd ./cmd/ngramsd
//	go run ./cmd/docslint -readme README.md -bins /tmp/ngrams,/tmp/ngramsd \
//	    -links README.md,PERFORMANCE.md,doc.go
//
// Exit status is nonzero when any check fails, with one line per
// finding.
package main

import (
	"flag"
	"fmt"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

// flagLine matches the first line of one flag's usage entry as printed
// by the standard flag package: two spaces, a dash, the name.
var flagLine = regexp.MustCompile(`(?m)^  -([A-Za-z][\w.-]*)`)

// mdLink matches markdown inline links [text](target).
var mdLink = regexp.MustCompile(`\[[^\]\n]*\]\(([^)\s]+)\)`)

func main() {
	readme := flag.String("readme", "README.md", "markdown file that must mention every binary flag")
	bins := flag.String("bins", "", "comma-separated binaries whose -h flags must appear in -readme")
	links := flag.String("links", "", "comma-separated docs whose relative markdown links must resolve")
	flag.Parse()

	var problems []string

	if *bins != "" {
		doc, err := os.ReadFile(*readme)
		if err != nil {
			fatalf("read %s: %v", *readme, err)
		}
		for _, bin := range splitList(*bins) {
			for _, name := range binaryFlags(bin) {
				// A documented flag appears as "-name" (prose, backticks,
				// or an example command line).
				if !strings.Contains(string(doc), "-"+name) {
					problems = append(problems,
						fmt.Sprintf("%s: flag -%s is not mentioned in %s", filepath.Base(bin), name, *readme))
				}
			}
		}
	}

	for _, doc := range splitList(*links) {
		problems = append(problems, checkLinks(doc)...)
	}

	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "docslint:", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// binaryFlags runs bin -h and extracts the declared flag names.
func binaryFlags(bin string) []string {
	out, err := exec.Command(bin, "-h").CombinedOutput()
	// The flag package exits 0 on -h, but be lenient: usage text is
	// printed either way, and an empty flag list is the real failure.
	names := flagLine.FindAllStringSubmatch(string(out), -1)
	if len(names) == 0 {
		fatalf("%s -h printed no flags (%v):\n%s", bin, err, out)
	}
	flags := make([]string, 0, len(names))
	for _, m := range names {
		flags = append(flags, m[1])
	}
	return flags
}

// checkLinks verifies every relative markdown link in doc resolves to
// an existing file or directory, relative to the doc's own directory.
func checkLinks(doc string) []string {
	data, err := os.ReadFile(doc)
	if err != nil {
		fatalf("read %s: %v", doc, err)
	}
	var problems []string
	for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if u, err := url.Parse(target); err == nil && u.Scheme != "" {
			continue // absolute URL: out of scope
		}
		target, _, _ = strings.Cut(target, "#")
		if target == "" {
			continue // pure anchor
		}
		path := filepath.Join(filepath.Dir(doc), target)
		if _, err := os.Stat(path); err != nil {
			problems = append(problems, fmt.Sprintf("%s: broken relative link %q", doc, m[1]))
		}
	}
	return problems
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "docslint: "+format+"\n", args...)
	os.Exit(1)
}
