// Command ngrams computes n-gram statistics over text files.
//
// Usage:
//
//	ngrams [flags] file.txt...
//	cat corpus.txt | ngrams [flags]
//
// Each input file is one document (with stdin, each line is one
// document). Example:
//
//	ngrams -tau 5 -sigma 5 -top 20 books/*.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"ngramstats"
)

func main() {
	var (
		method   = flag.String("method", "suffix-sigma", "algorithm: naive | apriori-scan | apriori-index | suffix-sigma")
		tau      = flag.Int64("tau", 2, "minimum collection frequency τ")
		sigma    = flag.Int("sigma", 5, "maximum n-gram length σ (0 = unbounded)")
		top      = flag.Int("top", 25, "print the k most frequent n-grams (0 = all)")
		longest  = flag.Int("longest", 0, "also print the k longest n-grams")
		maximal  = flag.Bool("maximal", false, "report only maximal n-grams")
		closed   = flag.Bool("closed", false, "report only closed n-grams")
		combine  = flag.Bool("combiner", true, "use map-side local aggregation")
		docsplit = flag.Bool("docsplit", false, "split documents at infrequent terms first")
		web      = flag.Bool("web", false, "apply boilerplate filtering (web pages)")
		df       = flag.Bool("df", false, "also report document frequencies (distinct documents)")
		stats    = flag.Bool("stats", false, "print run statistics (jobs, bytes, records, time)")
	)
	flag.Parse()

	docs, err := readDocuments(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngrams:", err)
		os.Exit(1)
	}
	if len(docs) == 0 {
		fmt.Fprintln(os.Stderr, "ngrams: no input documents")
		os.Exit(1)
	}

	var corpus *ngramstats.Corpus
	if *web {
		corpus, err = ngramstats.FromWebText("input", docs, nil)
	} else {
		corpus, err = ngramstats.FromText("input", docs, nil)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngrams:", err)
		os.Exit(1)
	}

	opts := ngramstats.Options{
		Method:         ngramstats.Method(*method),
		MinFrequency:   *tau,
		MaxLength:      *sigma,
		Combiner:       *combine,
		DocumentSplits: *docsplit,
	}
	switch {
	case *maximal:
		opts.Selection = ngramstats.SelectMaximal
	case *closed:
		opts.Selection = ngramstats.SelectClosed
	}
	if *df {
		opts.Aggregation = ngramstats.DocumentIndex
	}

	result, err := ngramstats.Count(context.Background(), corpus, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngrams:", err)
		os.Exit(1)
	}
	defer result.Release()

	k := *top
	if k == 0 {
		k = int(result.Len())
	}
	ngrams, err := result.TopK(k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngrams:", err)
		os.Exit(1)
	}
	fmt.Printf("%d n-grams with cf >= %d (sigma = %d)\n", result.Len(), *tau, *sigma)
	for _, ng := range ngrams {
		if *df {
			fmt.Printf("%10d  df=%-6d %s\n", ng.Frequency, len(ng.Documents), ng.Text)
		} else {
			fmt.Printf("%10d  %s\n", ng.Frequency, ng.Text)
		}
	}
	if *longest > 0 {
		fmt.Printf("\nlongest n-grams:\n")
		lngrams, err := result.Longest(*longest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ngrams:", err)
			os.Exit(1)
		}
		for _, ng := range lngrams {
			fmt.Printf("%4d words x%d  %s\n", ng.Length(), ng.Frequency, ng.Text)
		}
	}
	if *stats {
		fmt.Printf("\njobs=%d wallclock=%v bytes=%d shuffle-bytes=%d records=%d\n",
			result.Jobs(), result.Wallclock(), result.BytesTransferred(), result.ShuffleBytes(), result.RecordsTransferred())
	}
}

func readDocuments(paths []string) ([]string, error) {
	if len(paths) == 0 {
		var docs []string
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 16<<20)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				docs = append(docs, line)
			}
		}
		return docs, sc.Err()
	}
	docs := make([]string, 0, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		docs = append(docs, string(b))
	}
	return docs, nil
}
