// Command ngrams computes n-gram statistics over text files.
//
// Usage:
//
//	ngrams [flags] file.txt...
//	cat corpus.txt | ngrams [flags]
//
// Each input file is one document (with stdin, each line is one
// document). Ingestion streams: documents are tokenized and encoded one
// at a time through the CorpusBuilder API, so the corpus never holds
// all raw text in memory. Example:
//
//	ngrams -tau 5 -sigma 5 -top 20 books/*.txt
//
// The result can outlive the run: -save dir persists it as a sharded
// on-disk index (servable later with cmd/ngramsd), and -serve :8091
// serves it over HTTP right away:
//
//	ngrams -tau 5 -save /data/books-idx books/*.txt
//	ngrams -tau 5 -serve :8091 books/*.txt
//
// By default MapReduce tasks run as goroutines; -runner=process runs
// every map/reduce task in a separate worker OS process (a re-exec of
// this binary in a hidden worker mode) with per-task retry:
//
//	ngrams -runner=process -workers 4 -tau 5 books/*.txt
//
// -runner=net://host:port starts an HTTP coordinator and drives net
// workers with task leases, heartbeats, retry, and a shuffle-transfer
// service. By default the run spawns its own workers; with ?spawn=0 it
// waits for external workers started with -worker-connect (possibly on
// other machines):
//
//	ngrams -worker-connect host:7001 &   # repeat per worker
//	ngrams -runner='net://host:7001?spawn=0' -tau 5 books/*.txt
//
// -sketch skips the exact MapReduce job entirely and answers from a
// one-pass count-min sketch: a single streaming scan, constant memory,
// one-sided estimates with a stated eps*N error bound:
//
//	ngrams -sketch -eps 1e-4 -delta 0.01 -sigma 3 -top 20 books/*.txt
//
// A saved index (computed with -tau 1 and no -maximal/-closed) can grow
// incrementally: -append runs the exact job over only the new input and
// links it to the index as a delta generation, -compact merges base and
// deltas back into one index byte-identical to a full rebuild, and
// -open dumps any saved index or chain deterministically:
//
//	ngrams -tau 1 -sigma 3 -save /data/idx batch1/*.txt
//	ngrams -append /data/idx batch2/*.txt
//	ngrams -open /data/idx
//	ngrams -compact /data/idx
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"iter"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"ngramstats"
	"ngramstats/internal/mapreduce"
	"ngramstats/internal/serving"
)

func main() {
	var (
		method   = flag.String("method", "suffix-sigma", "algorithm: naive | apriori-scan | apriori-index | suffix-sigma")
		tau      = flag.Int64("tau", 2, "minimum collection frequency τ")
		sigma    = flag.Int("sigma", 5, "maximum n-gram length σ (0 = unbounded)")
		top      = flag.Int("top", 25, "print the k most frequent n-grams (0 = all)")
		longest  = flag.Int("longest", 0, "also print the k longest n-grams")
		maximal  = flag.Bool("maximal", false, "report only maximal n-grams")
		closed   = flag.Bool("closed", false, "report only closed n-grams")
		combine  = flag.Bool("combiner", true, "use map-side local aggregation")
		docsplit = flag.Bool("docsplit", false, "split documents at infrequent terms first")
		web      = flag.Bool("web", false, "apply boilerplate filtering (web pages)")
		df       = flag.Bool("df", false, "also report document frequencies (distinct documents)")
		stats    = flag.Bool("stats", false, "print run statistics (jobs, bytes, records, time)")
		progress = flag.Bool("progress", false, "print live progress while computing")
		mem      = flag.Int("mem", 0, "corpus builder memory budget in MiB (0 = default)")
		save     = flag.String("save", "", "persist the result as a queryable index in this directory")
		serve    = flag.String("serve", "", "serve the result over HTTP on this address (e.g. :8091) until interrupted")
		runner   = flag.String("runner", "", "execution backend address: local (in-process tasks) | process (one worker OS process per task) | net://host:port[?spawn=N] (HTTP coordinator with leased net workers); default honors $NGRAMS_RUNNER")
		workers  = flag.Int("workers", 0, "max concurrent worker processes with a worker-based -runner (0 = backend default)")
		retries  = flag.Int("retries", 0, "per-task attempt budget with a worker-based -runner (0 = default of 2)")
		connect  = flag.String("worker-connect", "", "run as a net worker for the coordinator at this address (host:port) until interrupted; no input is read")
		appendTo = flag.String("append", "", "append the input documents to the saved index in this directory as a delta generation (exact job over only the new documents)")
		compact  = flag.String("compact", "", "merge the saved index chain in this directory (base + deltas) into a single base index and exit")
		open     = flag.String("open", "", "dump every n-gram of the saved index or chain in this directory to stdout, deterministically ordered, and exit")
		sketch   = flag.Bool("sketch", false, "one-pass approximate mode: count-min sketch instead of the exact MapReduce job")
		eps      = flag.Float64("eps", 0, "with -sketch: estimates exceed true counts by at most eps*N (0 = default 1e-4)")
		delta    = flag.Float64("delta", 0, "with -sketch: the eps*N bound holds per key with probability 1-delta (0 = default 0.01)")
	)
	mapreduce.RunWorkerIfRequested() // hidden worker mode for worker-based -runner re-execs
	flag.Parse()
	ctx := context.Background()

	if *connect != "" {
		wctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Fprintf(os.Stderr, "ngrams: worker serving coordinator %s; interrupt to stop\n", *connect)
		if err := mapreduce.RunNetWorker(wctx, *connect); err != nil {
			fmt.Fprintln(os.Stderr, "ngrams: worker:", err)
			os.Exit(1)
		}
		return
	}

	if *open != "" {
		if err := dumpIndex(*open); err != nil {
			fmt.Fprintln(os.Stderr, "ngrams:", err)
			os.Exit(1)
		}
		return
	}
	if *compact != "" {
		if err := compactRun(*compact); err != nil {
			fmt.Fprintln(os.Stderr, "ngrams:", err)
			os.Exit(1)
		}
		return
	}
	if *appendTo != "" {
		err := appendRun(ctx, *appendTo, documents(flag.Args(), *web), ngramstats.AppendOptions{
			Count: ngramstats.Options{
				Method:         ngramstats.Method(*method),
				Combiner:       *combine,
				DocumentSplits: *docsplit,
				Execution: ngramstats.Execution{
					Runner:      *runner,
					Workers:     *workers,
					MaxAttempts: *retries,
				},
			},
			Builder: ngramstats.BuilderOptions{MemoryBudget: *mem << 20},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ngrams:", err)
			os.Exit(1)
		}
		return
	}

	if *sketch {
		if err := sketchRun(documents(flag.Args(), *web), *eps, *delta, *sigma, *top); err != nil {
			fmt.Fprintln(os.Stderr, "ngrams:", err)
			os.Exit(1)
		}
		return
	}

	corpus, err := ngramstats.FromDocuments(ctx, "input", documents(flag.Args(), *web),
		ngramstats.BuilderOptions{MemoryBudget: *mem << 20})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngrams:", err)
		os.Exit(1)
	}
	if corpus.Stats().Documents == 0 {
		fmt.Fprintln(os.Stderr, "ngrams: no input documents")
		os.Exit(1)
	}

	opts := ngramstats.Options{
		Method:         ngramstats.Method(*method),
		MinFrequency:   *tau,
		MaxLength:      *sigma,
		Combiner:       *combine,
		DocumentSplits: *docsplit,
		Execution: ngramstats.Execution{
			Runner:      *runner,
			Workers:     *workers,
			MaxAttempts: *retries,
		},
	}
	switch {
	case *maximal:
		opts.Selection = ngramstats.SelectMaximal
	case *closed:
		opts.Selection = ngramstats.SelectClosed
	}
	if *df {
		opts.Aggregation = ngramstats.DocumentIndex
	}

	job, err := ngramstats.Start(ctx, corpus, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngrams:", err)
		os.Exit(1)
	}
	if *progress {
		go watch(job)
	}
	result, err := job.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngrams:", err)
		os.Exit(1)
	}
	defer result.Release()

	k := *top
	if k == 0 {
		k = int(result.Len())
	}
	ngrams, err := result.TopK(k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngrams:", err)
		os.Exit(1)
	}
	fmt.Printf("%d n-grams with cf >= %d (sigma = %d)\n", result.Len(), *tau, *sigma)
	for _, ng := range ngrams {
		if *df {
			fmt.Printf("%10d  df=%-6d %s\n", ng.Frequency, len(ng.Documents), ng.Text)
		} else {
			fmt.Printf("%10d  %s\n", ng.Frequency, ng.Text)
		}
	}
	if *longest > 0 {
		fmt.Printf("\nlongest n-grams:\n")
		lngrams, err := result.Longest(*longest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ngrams:", err)
			os.Exit(1)
		}
		for _, ng := range lngrams {
			fmt.Printf("%4d words x%d  %s\n", ng.Length(), ng.Frequency, ng.Text)
		}
	}
	if *stats {
		counters := job.Counters()
		fmt.Printf("\nbackend=%s\n", backendLabel(*runner, *workers, *retries))
		fmt.Printf("jobs=%d wallclock=%v bytes=%d shuffle-bytes=%d records=%d worker-procs=%d tasks-retried=%d\n",
			result.Jobs(), result.Wallclock(), result.BytesTransferred(), result.ShuffleBytes(), result.RecordsTransferred(),
			counters[mapreduce.CounterWorkerProcs], counters[mapreduce.CounterTasksRetried])
		if counters[mapreduce.CounterNetWorkers] > 0 {
			fmt.Printf("net-workers=%d leases-expired=%d tasks-speculated=%d shuffle-fetch-bytes=%d\n",
				counters[mapreduce.CounterNetWorkers], counters[mapreduce.CounterLeasesExpired],
				counters[mapreduce.CounterTasksSpeculated], counters[mapreduce.CounterShuffleFetchBytes])
		}
	}
	if *save != "" {
		// Replace lets a rerun refresh an existing index in place; a
		// watching ngramsd (-watch) hot-swaps to it without downtime.
		if err := result.SaveWith(*save, ngramstats.SaveOptions{Replace: true}); err != nil {
			fmt.Fprintln(os.Stderr, "ngrams: save:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ngrams: saved index with %d n-grams to %s\n", result.Len(), *save)
	}
	if *serve != "" {
		if err := serveResult(ctx, result, *save, *serve); err != nil {
			fmt.Fprintln(os.Stderr, "ngrams: serve:", err)
			os.Exit(1)
		}
	}
}

// appendRun is the -append mode: the exact job runs over only the new
// documents and the result links to the existing index as a delta
// generation. τ, σ, selection, and aggregation come from the chain,
// not from flags.
func appendRun(ctx context.Context, dir string, docs iter.Seq2[ngramstats.Document, error], opts ngramstats.AppendOptions) error {
	var batch []ngramstats.Document
	for doc, err := range docs {
		if err != nil {
			return err
		}
		batch = append(batch, doc)
	}
	stats, err := ngramstats.AppendDelta(ctx, dir, batch, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ngrams: appended %d documents (%d n-grams, %d map input records) to %s; chain now %d documents, %d deltas\n",
		stats.Docs, stats.Records, stats.Counters[mapreduce.CounterMapInputRecords], dir, stats.ChainDocs, stats.Deltas)
	return nil
}

// compactRun is the -compact mode: merge the chain's generations into
// one base index, byte-identical to a full rebuild.
func compactRun(dir string) error {
	stats, err := ngramstats.CompactIndex(dir, ngramstats.CompactOptions{})
	if err != nil {
		return err
	}
	if !stats.Compacted {
		fmt.Fprintf(os.Stderr, "ngrams: %s has no deltas to compact\n", dir)
		return nil
	}
	fmt.Fprintf(os.Stderr, "ngrams: compacted %d generations of %s into %d n-grams in %v\n",
		stats.Generations, dir, stats.Records, stats.Wallclock.Round(time.Millisecond))
	return nil
}

// dumpIndex is the -open mode: every n-gram of a saved index or chain
// on stdout in the canonical (dictionary-encoded) order, rendering
// time-series and document aggregates sorted — the same documents
// produce the same dump whether indexed in one batch or incrementally,
// which is exactly what the CI smoke diff asserts.
func dumpIndex(dir string) error {
	x, err := ngramstats.OpenIndex(dir)
	if err != nil {
		return err
	}
	defer x.Close()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for ng, err := range x.NGrams() {
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%s", ng.Frequency, ng.Text)
		if len(ng.Years) > 0 {
			years := make([]int, 0, len(ng.Years))
			for y := range ng.Years {
				years = append(years, y)
			}
			sort.Ints(years)
			for _, y := range years {
				fmt.Fprintf(w, "\t%d:%d", y, ng.Years[y])
			}
		}
		if len(ng.Documents) > 0 {
			ids := make([]int64, 0, len(ng.Documents))
			for id := range ng.Documents {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				fmt.Fprintf(w, "\t%d:%d", id, ng.Documents[id])
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// sketchRun is the -sketch mode: one streaming pass over the input
// through a count-min sketch, then the tracked heavy hitters with
// their one-sided error bounds. No exact job runs and no corpus is
// materialized; memory stays constant in the input size.
func sketchRun(docs iter.Seq2[ngramstats.Document, error], eps, delta float64, sigma, top int) error {
	si, err := ngramstats.NewStreamIngester(ngramstats.IngestOptions{
		Epsilon: eps, Delta: delta, MaxLength: sigma, TopK: max(top, 1),
	})
	if err != nil {
		return err
	}
	for doc, err := range docs {
		if err != nil {
			return err
		}
		if err := si.Ingest(doc); err != nil {
			return err
		}
	}
	if si.Docs() == 0 {
		return fmt.Errorf("no input documents")
	}
	opts := si.Options()
	fmt.Printf("approximate heavy hitters over %d documents (eps=%g delta=%g sigma=%d)\n",
		si.Docs(), opts.Epsilon, opts.Delta, opts.MaxLength)
	for _, hh := range si.TopK(top) {
		fmt.Printf("%10d (+<=%d)  %s\n", hh.Estimate, hh.Bound, hh.Phrase)
	}
	return nil
}

// backendLabel resolves the same runner address the run used and
// renders it (scheme plus worker count) for -stats attribution.
func backendLabel(addr string, workers, retries int) string {
	if addr == "" {
		addr = os.Getenv(mapreduce.RunnerEnv)
	}
	r, err := mapreduce.NewRunner(addr, workers, retries)
	if err != nil {
		return addr
	}
	return fmt.Sprint(r)
}

// serveResult exposes the computed result over HTTP: the result is
// persisted as an index (reusing savedDir when -save already wrote
// one, else a temporary directory) and served until interrupted.
func serveResult(ctx context.Context, result *ngramstats.Result, savedDir, addr string) error {
	dir := savedDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ngrams-serve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
		if err := result.Save(dir); err != nil {
			return err
		}
	}
	srv, err := serving.NewServer(serving.ServerOptions{
		Indexes: map[string]serving.IndexConfig{"input": {Dir: dir}},
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	ready := make(chan string, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ngrams: serving %d n-grams on http://%s (/v1/lookup /v1/prefix /v1/topk /v1/query /healthz /metrics); interrupt to stop\n",
			result.Len(), <-ready)
	}()
	return serving.ListenAndServe(ctx, addr, srv, ready)
}

// watch prints progress snapshots to stderr until the job finishes.
func watch(job *ngramstats.Job) {
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-job.Done():
			return
		case <-tick.C:
			p := job.Progress()
			fmt.Fprintf(os.Stderr, "  [%6s] %s: tasks %d/%d, jobs %d/%d, %d records, %d shuffle bytes (%v)\n",
				p.Phase, p.JobName, p.TasksDone, p.TasksTotal, p.JobsDone, p.JobsStarted,
				p.Records, p.ShuffleBytes, p.Elapsed.Round(time.Millisecond))
		}
	}
}

// documents streams the input as a document sequence: one document per
// file path, or one per non-empty stdin line when no paths are given.
// Only one document's raw text is resident at a time; documents take
// ordinal IDs.
func documents(paths []string, web bool) iter.Seq2[ngramstats.Document, error] {
	if len(paths) > 0 {
		return ngramstats.FileDocuments(paths, web)
	}
	return func(yield func(ngramstats.Document, error) bool) {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 16<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			if !yield(ngramstats.Document{Text: line, Web: web}, nil) {
				return
			}
		}
		if err := sc.Err(); err != nil {
			yield(ngramstats.Document{}, err)
		}
	}
}
