package ngramstats

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"ngramstats/internal/lsm"
	"ngramstats/internal/mapreduce"
)

// The incremental-maintenance fixture: the persist-test corpus split
// into a base batch and two append batches, so base + deltas together
// cover exactly the documents of saveTestCorpus.
var (
	lsmDocs = []string{
		"the quick brown fox jumps over the lazy dog. the quick brown fox returns.",
		"a quick brown fox is not a lazy dog. the dog sleeps.",
		"the quick brown fox jumps over the lazy dog again and again.",
		"lazy dogs sleep. quick foxes jump. the quick brown fox jumps.",
		"to be or not to be. to be or not to be. that is the question.",
	}
	lsmYears = []int{1999, 2001, 2001, 2004, 2007}
)

// lsmBatch packages lsmDocs[lo:hi] as append input (zero IDs: the
// chain assigns the ordinals a full rebuild would).
func lsmBatch(lo, hi int) []Document {
	docs := make([]Document, 0, hi-lo)
	for i := lo; i < hi; i++ {
		docs = append(docs, Document{Text: lsmDocs[i], Year: lsmYears[i]})
	}
	return docs
}

// saveFullIndex counts lsmDocs[:n] under the chain invariants (τ = 1,
// no selection) and saves the result with Save's default layout — the
// same policy CompactIndex reproduces.
func saveFullIndex(t *testing.T, agg Aggregation, n int, dir string) {
	t.Helper()
	c, err := FromText("persist-test", lsmDocs[:n], lsmYears[:n])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(context.Background(), c, Options{
		MinFrequency: 1, MaxLength: 5, Aggregation: agg, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	if err := res.SaveWith(dir, SaveOptions{TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}

// buildChain saves a base over lsmDocs[:2] and appends lsmDocs[2:3]
// and lsmDocs[3:5] as two delta generations, asserting each append's
// MAP_INPUT_RECORDS shows only the new documents were processed.
func buildChain(t *testing.T, agg Aggregation, dir string) {
	t.Helper()
	saveFullIndex(t, agg, 2, dir)
	for i, bounds := range [][2]int{{2, 3}, {3, 5}} {
		batch := lsmBatch(bounds[0], bounds[1])
		stats, err := AppendDelta(context.Background(), dir, batch, AppendOptions{
			Count: Options{TempDir: t.TempDir()},
		})
		if err != nil {
			t.Fatalf("AppendDelta batch %d: %v", i, err)
		}
		if stats.Docs != int64(len(batch)) {
			t.Fatalf("append %d: Docs = %d, want %d", i, stats.Docs, len(batch))
		}
		if got := stats.Counters[mapreduce.CounterMapInputRecords]; got != int64(len(batch)) {
			t.Fatalf("append %d read %d map input records, want %d (incremental cost must be O(new documents))",
				i, got, len(batch))
		}
		if stats.Deltas != i+1 {
			t.Fatalf("append %d: Deltas = %d, want %d", i, stats.Deltas, i+1)
		}
		if want := int64(bounds[1]); stats.ChainDocs != want {
			t.Fatalf("append %d: ChainDocs = %d, want %d", i, stats.ChainDocs, want)
		}
	}
}

// assertIndexesEqual checks that two open indexes answer every public
// query identically: NGrams, TopK (below, at, and beyond the stored
// depth), Longest, Lookup (hits and misses), and Prefix.
func assertIndexesEqual(t *testing.T, got, want *Index) {
	t.Helper()
	// A merge-on-read view's Len is an upper bound (an n-gram present
	// in several generations counts once per generation); it must never
	// undercount. The NGrams comparison below proves the distinct sets
	// are identical.
	if got.Len() < want.Len() {
		t.Fatalf("Len: got %d, below %d", got.Len(), want.Len())
	}
	wantSet := collect(t, want.NGrams())
	gotSet := collect(t, got.NGrams())
	if len(gotSet) != len(wantSet) {
		t.Fatalf("NGrams: %d vs %d", len(gotSet), len(wantSet))
	}
	for k, w := range wantSet {
		g, ok := gotSet[k]
		if !ok {
			t.Fatalf("missing n-gram %q", w.Text)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("NGram mismatch for %q:\ngot:  %+v\nwant: %+v", w.Text, g, w)
		}
	}
	for _, k := range []int{0, 1, 3, 7, 25, int(want.Len()), int(want.Len()) + 9} {
		gw, err := got.TopK(k)
		if err != nil {
			t.Fatal(err)
		}
		ww, err := want.TopK(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gw, ww) {
			t.Fatalf("TopK(%d) mismatch:\ngot:  %v\nwant: %v", k, texts(gw), texts(ww))
		}
	}
	for _, k := range []int{1, 5} {
		gw, err := got.Longest(k)
		if err != nil {
			t.Fatal(err)
		}
		ww, err := want.Longest(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gw, ww) {
			t.Fatalf("Longest(%d) mismatch", k)
		}
	}
	phrases := make([]string, 0, len(wantSet))
	for _, w := range wantSet {
		phrases = append(phrases, w.Text)
	}
	sort.Strings(phrases)
	phrases = append(phrases, "the the the", "xylophone quick", "")
	for _, p := range phrases {
		gg, gok, err := got.Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		wg, wok, err := want.Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		if gok != wok || !reflect.DeepEqual(gg, wg) {
			t.Fatalf("Lookup(%q): got (%v, %v), want (%v, %v)", p, gg, gok, wg, wok)
		}
	}
	for _, p := range []string{"the", "quick brown", "to be", "zebra"} {
		gp, err := got.Prefix(p, 50)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := want.Prefix(p, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gp, wp) {
			t.Fatalf("Prefix(%q) mismatch: got %v, want %v", p, texts(gp), texts(wp))
		}
	}
}

// TestAppendCompactGolden is the incremental-maintenance golden test,
// across all aggregation kinds: a chain grown by two appends answers
// every query exactly as a from-scratch rebuild over all documents,
// and compaction then produces data files byte-identical to that
// rebuild's.
func TestAppendCompactGolden(t *testing.T) {
	for _, agg := range []Aggregation{Counts, TimeSeries, DocumentIndex} {
		t.Run(fmt.Sprintf("agg=%d", agg), func(t *testing.T) {
			chainDir := filepath.Join(t.TempDir(), "chain")
			fullDir := filepath.Join(t.TempDir(), "full")
			buildChain(t, agg, chainDir)
			saveFullIndex(t, agg, len(lsmDocs), fullDir)

			full, err := OpenIndex(fullDir)
			if err != nil {
				t.Fatal(err)
			}
			defer full.Close()

			// Merge-on-read: the chain's view equals the rebuild.
			chain, err := OpenIndex(chainDir)
			if err != nil {
				t.Fatal(err)
			}
			assertIndexesEqual(t, chain, full)
			chain.Close()

			// Compaction: byte-identical to the rebuild's data files.
			stats, err := CompactIndex(chainDir, CompactOptions{TempDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Compacted || stats.Generations != 3 {
				t.Fatalf("CompactStats = %+v, want 3 generations compacted", stats)
			}
			if stats.Records != full.Len() {
				t.Fatalf("compacted %d records, rebuild has %d", stats.Records, full.Len())
			}
			man, err := lsm.ReadManifest(chainDir)
			if err != nil {
				t.Fatal(err)
			}
			if len(man.Deltas) != 0 || man.Base.Dir == "." {
				t.Fatalf("post-compaction manifest: base %q, %d deltas", man.Base.Dir, len(man.Deltas))
			}
			baseDir := filepath.Join(chainDir, man.Base.Dir)
			names, err := filepath.Glob(filepath.Join(fullDir, "shard-*.run"))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range append([]string{"dictionary.tsv", "top.run"}, names...) {
				name := filepath.Base(f)
				wantBytes, err := os.ReadFile(filepath.Join(fullDir, name))
				if err != nil {
					t.Fatal(err)
				}
				gotBytes, err := os.ReadFile(filepath.Join(baseDir, name))
				if err != nil {
					t.Fatalf("compacted base is missing %s: %v", name, err)
				}
				if !reflect.DeepEqual(gotBytes, wantBytes) {
					t.Fatalf("%s differs between compacted base and full rebuild", name)
				}
			}
			// The adopted flat base and the delta directories are retired.
			if _, err := os.Stat(filepath.Join(chainDir, "dictionary.tsv")); !os.IsNotExist(err) {
				t.Fatalf("flat base files survived compaction (err=%v)", err)
			}
			if _, err := os.Stat(filepath.Join(chainDir, "delta-000000")); !os.IsNotExist(err) {
				t.Fatalf("delta generation survived compaction (err=%v)", err)
			}

			// The compacted chain still answers identically.
			chain, err = OpenIndex(chainDir)
			if err != nil {
				t.Fatal(err)
			}
			defer chain.Close()
			assertIndexesEqual(t, chain, full)

			// A second compaction is a no-op.
			stats, err = CompactIndex(chainDir, CompactOptions{TempDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Compacted {
				t.Fatal("compacting a delta-free chain must be a no-op")
			}
		})
	}
}

// TestAppendDocumentIDMixing rejects batches mixing explicit and
// auto-assigned document identifiers, in either order.
func TestAppendDocumentIDMixing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	saveFullIndex(t, Counts, 2, dir)
	for _, docs := range [][]Document{
		{{ID: 7, Text: "a b c."}, {Text: "d e f."}},
		{{Text: "a b c."}, {ID: 7, Text: "d e f."}},
	} {
		if _, err := AppendDelta(context.Background(), dir, docs, AppendOptions{}); err == nil {
			t.Fatalf("mixed-ID batch %v must be rejected", docs)
		}
	}
	if _, err := AppendDelta(context.Background(), dir, nil, AppendOptions{}); err == nil {
		t.Fatal("empty batch must be rejected")
	}
}

// TestChainManifestCorruption is the corruption sweep: every single
// byte flip and every truncation of the chain manifest, and every flip
// of its checksum file, must surface as ErrCorrupt — never as wrong
// counts — and removing a referenced delta must fail the open.
func TestChainManifestCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	saveFullIndex(t, Counts, 2, dir)
	if _, err := AppendDelta(context.Background(), dir, lsmBatch(2, 3), AppendOptions{}); err != nil {
		t.Fatal(err)
	}

	manPath := filepath.Join(dir, lsm.ChainFile)
	crcPath := filepath.Join(dir, lsm.ChainCRCFile)
	manData, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	crcData, err := os.ReadFile(crcPath)
	if err != nil {
		t.Fatal(err)
	}

	mustCorrupt := func(what string) {
		t.Helper()
		ix, err := OpenIndex(dir)
		if err == nil {
			ix.Close()
			t.Fatalf("%s: OpenIndex succeeded on a damaged chain", what)
		}
		if !errors.Is(err, lsm.ErrCorrupt) {
			t.Fatalf("%s: error %v does not wrap lsm.ErrCorrupt", what, err)
		}
	}
	restore := func() {
		if err := os.WriteFile(manPath, manData, 0o666); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(crcPath, crcData, 0o666); err != nil {
			t.Fatal(err)
		}
	}

	// Sanity: the pristine chain opens.
	if ix, err := OpenIndex(dir); err != nil {
		t.Fatalf("pristine chain: %v", err)
	} else {
		ix.Close()
	}

	for i := range manData {
		bad := append([]byte(nil), manData...)
		bad[i] ^= 0xff
		if err := os.WriteFile(manPath, bad, 0o666); err != nil {
			t.Fatal(err)
		}
		mustCorrupt(fmt.Sprintf("manifest byte %d flipped", i))
	}
	restore()
	for n := range manData {
		if err := os.WriteFile(manPath, manData[:n], 0o666); err != nil {
			t.Fatal(err)
		}
		mustCorrupt(fmt.Sprintf("manifest truncated to %d bytes", n))
	}
	restore()
	for i := range crcData {
		bad := append([]byte(nil), crcData...)
		bad[i] ^= 0xff
		if err := os.WriteFile(crcPath, bad, 0o666); err != nil {
			t.Fatal(err)
		}
		mustCorrupt(fmt.Sprintf("checksum byte %d flipped", i))
	}
	restore()

	// A manifest that references a missing generation must fail the
	// open (with the filesystem's error, not wrong counts).
	if err := os.RemoveAll(filepath.Join(dir, "delta-000000")); err != nil {
		t.Fatal(err)
	}
	if ix, err := OpenIndex(dir); err == nil {
		ix.Close()
		t.Fatal("OpenIndex succeeded with a referenced delta missing")
	}
}

// TestCompactionCrashSafety: generation directories left behind by a
// crashed compaction or append never disturb the committed chain —
// readers ignore them, the next mutation sweeps them, and compaction
// then completes normally.
func TestCompactionCrashSafety(t *testing.T) {
	chainDir := filepath.Join(t.TempDir(), "chain")
	fullDir := filepath.Join(t.TempDir(), "full")
	buildChain(t, Counts, chainDir)
	saveFullIndex(t, Counts, len(lsmDocs), fullDir)

	// A compaction that died mid-write: a partial base directory with
	// no committed manifest, plus a partial delta from a dead append.
	for _, orphan := range []string{"base-000099", "delta-000099"} {
		d := filepath.Join(chainDir, orphan)
		if err := os.MkdirAll(d, 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d, "shard-00000.run.tmp"), []byte("partial"), 0o666); err != nil {
			t.Fatal(err)
		}
	}

	full, err := OpenIndex(fullDir)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	chain, err := OpenIndex(chainDir)
	if err != nil {
		t.Fatalf("chain with orphan generations must stay queryable: %v", err)
	}
	assertIndexesEqual(t, chain, full)
	chain.Close()

	// The next mutation sweeps the orphans and succeeds.
	stats, err := CompactIndex(chainDir, CompactOptions{TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Compacted {
		t.Fatal("compaction did not run")
	}
	for _, orphan := range []string{"base-000099", "delta-000099"} {
		if _, err := os.Stat(filepath.Join(chainDir, orphan)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the sweep (err=%v)", orphan, err)
		}
	}
	chain, err = OpenIndex(chainDir)
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Close()
	assertIndexesEqual(t, chain, full)
}

// TestReconcileIncremental covers the ingester's incremental
// reconciliation contract: NewDocuments exposes exactly the documents
// since the last commit, CommitDrop retires them, and the full-rebuild
// iterator refuses to run once leading documents have been dropped.
func TestReconcileIncremental(t *testing.T) {
	si, err := NewStreamIngester(IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := si.Ingest(lsmBatch(0, 2)...); err != nil {
		t.Fatal(err)
	}

	rc, err := si.BeginReconcile()
	if err != nil {
		t.Fatal(err)
	}
	if got := rc.NewDocuments(); len(got) != 2 || got[0].Text != lsmDocs[0] {
		t.Fatalf("first NewDocuments: %d docs", len(got))
	}
	// Before any drop the full iterator still works.
	n := 0
	for _, err := range rc.Documents() {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("Documents yielded %d docs, want 2", n)
	}
	rc.CommitDrop()
	if si.Pending() != 0 || si.Covered() != 2 || si.Docs() != 2 {
		t.Fatalf("after CommitDrop: pending=%d covered=%d docs=%d", si.Pending(), si.Covered(), si.Docs())
	}

	if err := si.Ingest(lsmBatch(2, 4)...); err != nil {
		t.Fatal(err)
	}
	if si.Pending() != 2 || si.Docs() != 4 {
		t.Fatalf("after ingest: pending=%d docs=%d", si.Pending(), si.Docs())
	}
	rc, err = si.BeginReconcile()
	if err != nil {
		t.Fatal(err)
	}
	if got := rc.NewDocuments(); len(got) != 2 || got[0].Text != lsmDocs[2] {
		t.Fatalf("second NewDocuments: %+v", got)
	}
	// The stream's prefix is gone: a full-rebuild iteration must fail
	// rather than silently rebuild from a partial stream.
	sawErr := false
	for _, err := range rc.Documents() {
		if err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("Documents() must fail after leading documents were dropped")
	}
	if err := rc.Abort(); err != nil {
		t.Fatal(err)
	}

	// An aborted incremental reconcile leaves the window intact.
	rc, err = si.BeginReconcile()
	if err != nil {
		t.Fatal(err)
	}
	if got := rc.NewDocuments(); len(got) != 2 {
		t.Fatalf("post-abort NewDocuments: %d docs, want 2", len(got))
	}
	rc.CommitDrop()
	if si.Pending() != 0 || si.Covered() != 4 {
		t.Fatalf("final state: pending=%d covered=%d", si.Pending(), si.Covered())
	}
}
