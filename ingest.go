package ngramstats

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"math"
	"sort"
	"strings"
	"sync"

	"ngramstats/internal/corpus"
	"ngramstats/internal/encoding"
	"ngramstats/internal/sequence"
	"ngramstats/internal/sketch"
)

// IngestOptions configures a StreamIngester.
type IngestOptions struct {
	// Epsilon is the relative error target ε: approximate counts exceed
	// exact counts by at most ε·N (N = total n-gram occurrences of that
	// length) with probability 1−Delta. Default 1e-4.
	Epsilon float64
	// Delta is the failure probability δ of the ε·N bound. Default 0.01.
	Delta float64
	// TopK is how many heavy hitters the ingester tracks. Default 128.
	TopK int
	// MaxLength is σ: the longest n-gram sketched (and later counted
	// exactly by reconciliation). Default 5.
	MaxLength int
	// ReconcileEvery is advisory: how many newly ingested documents
	// should accumulate before a serving layer runs the next exact
	// reconciliation (see Pending). Zero leaves reconciliation entirely
	// to explicit BeginReconcile calls.
	ReconcileEvery int
	// Builder configures the corpus builds performed by Reconcile.Corpus
	// (memory budget, spill directory).
	Builder BuilderOptions
}

func (o IngestOptions) withDefaults() IngestOptions {
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	if o.Delta <= 0 {
		o.Delta = 0.01
	}
	if o.TopK <= 0 {
		o.TopK = 128
	}
	if o.MaxLength <= 0 {
		o.MaxLength = 5
	}
	return o
}

// ApproxCount is one approximate n-gram statistic: a one-sided estimate
// (never below the exact count) plus its stated error bound.
type ApproxCount struct {
	// Phrase is the space-joined word form.
	Phrase string
	// Order is the n-gram length in words.
	Order int
	// Estimate is the approximate occurrence count. It is at least the
	// exact count of the ingested stream.
	Estimate int64
	// Bound is ceil(ε·N) for the n-gram's order: with probability 1−δ
	// the estimate exceeds the exact count by no more.
	Bound int64
}

// ErrReconcileActive is returned by BeginReconcile while a previously
// begun reconciliation has neither committed nor aborted.
var ErrReconcileActive = errors.New("ngramstats: reconciliation already in progress")

// StreamIngester consumes a live document stream and maintains
// one-pass approximate n-gram statistics in bounded memory: per-order
// count-min sketches with a concurrency-safe conservative update plus a
// heavy-hitters heap (internal/sketch), following Lemire & Kaser's
// one-pass estimation. Ingested documents are retained verbatim, so a
// periodic exact reconciliation (BeginReconcile) can run the paper's
// MapReduce pipeline over the accumulated corpus through the standard
// FromDocuments seam — the resulting statistics are identical to a
// batch Count over the same documents — while the sketch keeps
// answering for everything newer.
//
// All methods are safe for concurrent use; Ingest and the query methods
// never block each other on sketch state.
type StreamIngester struct {
	opts   IngestOptions
	params sketch.Params

	// dict maps words to first-seen term identifiers for sketch keys.
	// This dictionary is private to the ingester: reconciliation
	// re-encodes documents through the standard frequency-ranked build
	// instead, so exact results match a pure batch run byte for byte.
	dict struct {
		sync.RWMutex
		ids   map[string]sequence.Term
		words []string
	}

	// mu guards the retained documents and the delta rotation. cur is
	// the live delta; drain is the previous delta while a reconciliation
	// of the documents up to cutoff is in flight (queries sum both).
	//
	// Document positions are absolute stream ordinals. docs holds the
	// retained tail starting at ordinal base: a full-rebuild ingester
	// keeps every document (base stays 0), while incremental
	// reconciliation (CommitDrop) releases documents once a delta index
	// covers them. covered is the absolute count of leading documents
	// served exactly by the last committed reconciliation.
	mu      sync.Mutex
	docs    []Document
	base    int64
	cur     *sketch.Group
	drain   *sketch.Group
	covered int64
}

// NewStreamIngester returns an empty ingester.
func NewStreamIngester(opts IngestOptions) (*StreamIngester, error) {
	opts = opts.withDefaults()
	p := sketch.Params{
		Epsilon: opts.Epsilon,
		Delta:   opts.Delta,
		Orders:  opts.MaxLength,
		TopK:    opts.TopK,
	}
	g, err := sketch.NewGroup(p)
	if err != nil {
		return nil, err
	}
	si := &StreamIngester{opts: opts, params: g.Params(), cur: g}
	si.dict.ids = make(map[string]sequence.Term)
	return si, nil
}

// Options returns the ingester's options with defaults applied.
func (si *StreamIngester) Options() IngestOptions { return si.opts }

// termIDs resolves tokens to sketch term identifiers, assigning
// first-seen identifiers when assign is true. With assign false, a
// token never ingested reports ok=false (its exact count is zero).
func (si *StreamIngester) termIDs(toks []string, assign bool) (sequence.Seq, bool) {
	s := make(sequence.Seq, len(toks))
	si.dict.RLock()
	miss := -1
	for i, tok := range toks {
		id, ok := si.dict.ids[tok]
		if !ok {
			miss = i
			break
		}
		s[i] = id
	}
	si.dict.RUnlock()
	if miss < 0 {
		return s, true
	}
	if !assign {
		return nil, false
	}
	si.dict.Lock()
	defer si.dict.Unlock()
	for i := miss; i < len(toks); i++ {
		id, ok := si.dict.ids[toks[i]]
		if !ok {
			id = sequence.Term(len(si.dict.words))
			si.dict.ids[toks[i]] = id
			si.dict.words = append(si.dict.words, toks[i])
		}
		s[i] = id
	}
	return s, true
}

// word renders a sketch term identifier back to its token.
func (si *StreamIngester) word(id sequence.Term) string {
	si.dict.RLock()
	defer si.dict.RUnlock()
	if int(id) < len(si.dict.words) {
		return si.dict.words[id]
	}
	return fmt.Sprintf("#%d", id)
}

// Ingest folds documents into the live sketch delta and retains them
// for the next exact reconciliation. Tokenization matches the batch
// corpus build: boilerplate filtering for web documents, sentence
// splitting, and within-sentence n-gram windows up to MaxLength.
func (si *StreamIngester) Ingest(docs ...Document) error {
	for _, doc := range docs {
		// The group must be chosen under the same critical section that
		// appends the document: a reconciliation cutoff taken afterwards
		// then provably includes this document, so dropping the drained
		// delta at commit never loses its counts.
		si.mu.Lock()
		si.docs = append(si.docs, doc)
		g := si.cur
		si.mu.Unlock()

		text := doc.Text
		if doc.Web {
			text = corpus.BoilerplateFilter(text)
		}
		var key []byte
		for _, sent := range corpus.SplitSentences(text) {
			toks := corpus.Tokenize(sent)
			if len(toks) == 0 {
				continue
			}
			ids, _ := si.termIDs(toks, true)
			for i := range ids {
				max := len(ids) - i
				if max > si.opts.MaxLength {
					max = si.opts.MaxLength
				}
				for n := 1; n <= max; n++ {
					key = encoding.AppendSeq(key[:0], ids[i:i+n])
					g.Update(n, key, 1)
				}
			}
		}
		g.AddDocs(1)
	}
	return nil
}

// groups returns the live delta and, while a reconciliation is in
// flight, the draining one.
func (si *StreamIngester) groups() (cur, drain *sketch.Group) {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.cur, si.drain
}

// Docs returns the number of documents ingested so far.
func (si *StreamIngester) Docs() int64 {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.base + int64(len(si.docs))
}

// Covered returns the number of leading documents whose statistics are
// already served exactly by the last committed reconciliation.
func (si *StreamIngester) Covered() int64 {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.covered
}

// Pending returns the number of ingested documents not yet covered by a
// committed reconciliation — the value a serving layer compares against
// ReconcileEvery.
func (si *StreamIngester) Pending() int64 {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.base + int64(len(si.docs)) - si.covered
}

// N returns the total number of n-gram occurrences of the given order
// currently held in the sketch delta (the N of the ε·N bound).
func (si *StreamIngester) N(order int) int64 {
	cur, drain := si.groups()
	n := cur.N(order)
	if drain != nil {
		n += drain.N(order)
	}
	return n
}

// ErrorBound returns ceil(ε·N) for the given order.
func (si *StreamIngester) ErrorBound(order int) int64 {
	return int64(math.Ceil(si.params.Epsilon * float64(si.N(order))))
}

// Bytes returns the resident counter memory of the sketches.
func (si *StreamIngester) Bytes() int64 {
	cur, drain := si.groups()
	b := cur.Bytes()
	if drain != nil {
		b += drain.Bytes()
	}
	return b
}

// Estimate returns the approximate count of a phrase over the delta
// (documents not yet covered by a committed reconciliation, plus those
// draining through an in-flight one). The estimate is one-sided and
// ok reports whether the phrase length is within the sketched orders;
// phrases containing never-ingested words report a zero estimate.
func (si *StreamIngester) Estimate(phrase string) (ApproxCount, bool) {
	toks := corpus.Tokenize(phrase)
	order := len(toks)
	if order < 1 || order > si.opts.MaxLength {
		return ApproxCount{}, false
	}
	out := ApproxCount{
		Phrase: strings.Join(toks, " "),
		Order:  order,
		Bound:  si.ErrorBound(order),
	}
	ids, known := si.termIDs(toks, false)
	if !known {
		return out, true
	}
	key := encoding.EncodeSeq(ids)
	cur, drain := si.groups()
	// Summing per-delta one-sided estimates stays one-sided for the
	// union of the two streams.
	if est, ok := cur.Estimate(order, key); ok {
		out.Estimate += est
	}
	if drain != nil {
		if est, ok := drain.Estimate(order, key); ok {
			out.Estimate += est
		}
	}
	return out, true
}

// TopK returns up to k heavy hitters across all sketched orders,
// largest estimate first. k <= 0 returns every tracked heavy hitter.
func (si *StreamIngester) TopK(k int) []ApproxCount {
	cur, drain := si.groups()
	seen := make(map[string]sketch.Entry)
	for _, g := range []*sketch.Group{cur, drain} {
		if g == nil {
			continue
		}
		for _, e := range g.Top(0) {
			if _, dup := seen[string(e.Key)]; dup {
				continue
			}
			est, ok := cur.Estimate(e.Order, e.Key)
			if !ok {
				continue
			}
			if drain != nil {
				if d, ok := drain.Estimate(e.Order, e.Key); ok {
					est += d
				}
			}
			seen[string(e.Key)] = sketch.Entry{Key: e.Key, Order: e.Order, Estimate: est}
		}
	}
	entries := make([]sketch.Entry, 0, len(seen))
	for _, e := range seen {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Estimate != entries[j].Estimate {
			return entries[i].Estimate > entries[j].Estimate
		}
		return string(entries[i].Key) < string(entries[j].Key)
	})
	if k > 0 && len(entries) > k {
		entries = entries[:k]
	}
	out := make([]ApproxCount, len(entries))
	for i, e := range entries {
		words := make([]string, 0, e.Order)
		rest := e.Key
		for len(rest) > 0 {
			id, n := encoding.Uvarint(rest)
			if n <= 0 {
				break
			}
			words = append(words, si.word(sequence.Term(id)))
			rest = rest[n:]
		}
		out[i] = ApproxCount{
			Phrase:   strings.Join(words, " "),
			Order:    e.Order,
			Estimate: e.Estimate,
			Bound:    si.ErrorBound(e.Order),
		}
	}
	return out
}

// WriteSnapshot persists an immutable snapshot of the current sketch
// delta (live plus draining) in the mergeable, CRC-checksummed format
// of internal/sketch.
func (si *StreamIngester) WriteSnapshot(w io.Writer) (int64, error) {
	cur, drain := si.groups()
	sn := cur.Snapshot()
	if drain != nil {
		if err := sn.Merge(drain.Snapshot()); err != nil {
			return 0, err
		}
	}
	return sn.WriteTo(w)
}

// Reconcile is one in-flight exact reconciliation: a frozen prefix of
// the ingested documents on its way through the exact MapReduce
// pipeline. Exactly one of Commit or Abort must be called.
type Reconcile struct {
	si      *StreamIngester
	docs    []Document // retained documents, starting at ordinal base
	base    int64      // absolute ordinal of docs[0]
	covered int64      // absolute coverage when the reconciliation began
	cutoff  int64      // absolute ordinal the reconciliation covers up to
	done    bool
}

// BeginReconcile freezes the currently accumulated documents for an
// exact batch computation and starts a fresh sketch delta for documents
// ingested while it runs. Queries keep covering both deltas until the
// caller commits (after swapping the exact results in) or aborts
// (folding the drained delta back).
func (si *StreamIngester) BeginReconcile() (*Reconcile, error) {
	g, err := sketch.NewGroup(si.params)
	if err != nil {
		return nil, err
	}
	si.mu.Lock()
	defer si.mu.Unlock()
	if si.drain != nil {
		return nil, ErrReconcileActive
	}
	si.drain = si.cur
	si.cur = g
	return &Reconcile{
		si:      si,
		docs:    si.docs,
		base:    si.base,
		covered: si.covered,
		cutoff:  si.base + int64(len(si.docs)),
	}, nil
}

// Cutoff returns how many leading documents the reconciliation covers.
func (rc *Reconcile) Cutoff() int { return int(rc.cutoff) }

// Documents yields every frozen document in ingestion order — the
// input of a full exact rebuild. After an incremental reconciliation
// has dropped covered documents (CommitDrop), the full prefix is gone
// and Documents yields an error; use NewDocuments and AppendDelta
// instead.
func (rc *Reconcile) Documents() iter.Seq2[Document, error] {
	return func(yield func(Document, error) bool) {
		if rc.base > 0 {
			yield(Document{}, fmt.Errorf("ngramstats: %d leading documents were dropped by incremental reconciliation; a full rebuild needs NewDocuments + AppendDelta", rc.base))
			return
		}
		for _, d := range rc.docs[:rc.cutoff-rc.base] {
			if !yield(d, nil) {
				return
			}
		}
	}
}

// NewDocuments returns the frozen documents not yet covered by the
// last committed reconciliation — the input of an incremental
// AppendDelta, O(new documents) regardless of stream length. The slice
// must not be mutated.
func (rc *Reconcile) NewDocuments() []Document {
	return rc.docs[rc.covered-rc.base : rc.cutoff-rc.base]
}

// Corpus builds the frozen documents into a corpus through the standard
// batch build, so a Count over it is identical — byte for byte — to a
// pure batch run over the same documents.
func (rc *Reconcile) Corpus(ctx context.Context, name string) (*Corpus, error) {
	return FromDocuments(ctx, name, rc.Documents(), rc.si.opts.Builder)
}

// Commit records that exact results for the frozen documents are being
// served and drops the drained sketch delta. The documents stay
// retained, so a later full rebuild remains possible.
func (rc *Reconcile) Commit() {
	if rc.done {
		return
	}
	rc.done = true
	rc.si.mu.Lock()
	defer rc.si.mu.Unlock()
	rc.si.drain = nil
	rc.si.covered = rc.cutoff
}

// CommitDrop is Commit for incremental reconciliation: the covered
// documents were appended to a persistent index as a delta generation,
// so the ingester releases them instead of retaining them forever —
// the memory held per reconciliation cycle stays O(new documents).
// After the first CommitDrop, Documents (the full-rebuild input)
// reports an error.
func (rc *Reconcile) CommitDrop() {
	if rc.done {
		return
	}
	rc.done = true
	rc.si.mu.Lock()
	defer rc.si.mu.Unlock()
	rc.si.drain = nil
	rc.si.covered = rc.cutoff
	keep := rc.si.docs[rc.cutoff-rc.si.base:]
	rc.si.docs = append([]Document(nil), keep...)
	rc.si.base = rc.cutoff
}

// Abort folds the drained delta back into the live one, restoring the
// pre-BeginReconcile approximate statistics.
func (rc *Reconcile) Abort() error {
	if rc.done {
		return nil
	}
	rc.done = true
	rc.si.mu.Lock()
	drain := rc.si.drain
	rc.si.drain = nil
	cur := rc.si.cur
	rc.si.mu.Unlock()
	if drain == nil {
		return nil
	}
	return cur.Merge(drain)
}
