package ngramstats

// Persistence: a completed Result saves as a sharded on-disk index,
// and OpenIndex reopens it — in the same process, a later one, or a
// serving daemon (cmd/ngramsd) — with byte-identical answers. The
// on-disk layout (internal/index) reuses the block-framed,
// prefix-compressed, CRC-checked run format of the shuffle, wrapped in
// a manifest carrying the corpus dictionary and a snapshot of the
// producing run's counters.

import (
	"errors"
	"fmt"
	"iter"
	"strings"
	"time"

	"ngramstats/internal/core"
	"ngramstats/internal/dictionary"
	"ngramstats/internal/encoding"
	"ngramstats/internal/extsort"
	"ngramstats/internal/index"
	"ngramstats/internal/lsm"
	"ngramstats/internal/sequence"
)

// SaveOptions tunes Save. The zero value selects sensible defaults.
type SaveOptions struct {
	// Shards is the number of sorted shard files; 0 sizes them
	// automatically (~128k records per shard, at most 32).
	Shards int
	// TopDepth is how many precomputed top-frequency records the index
	// stores so TopK queries up to that depth never scan. 0 selects
	// 1024; negative stores none.
	TopDepth int
	// Compress enables per-block DEFLATE compression of the shards on
	// top of the format's front-coding.
	Compress bool
	// TempDir is the scratch directory for the save-time sort (default:
	// system temp).
	TempDir string
	// Replace allows saving over a directory that already contains a
	// committed index. The new index is staged beside the old one and
	// swapped in atomically: concurrent readers (an Index opened on the
	// directory, or a ngramsd daemon watching it) keep serving the old
	// generation undisturbed until they reopen, and the directory is
	// openable at every instant of the replacement. Without Replace,
	// saving into a directory that already holds an index fails.
	Replace bool
}

// defaultTopDepth is how many top records Save precomputes by default.
const defaultTopDepth = 1024

// Save persists the result into dir as a queryable on-disk index:
// sorted sharded record files, the corpus dictionary, precomputed top
// records, and a manifest, all checksummed. OpenIndex reopens it with
// answers byte-identical to this result's. Equivalent to SaveWith with
// zero options.
func (r *Result) Save(dir string) error { return r.SaveWith(dir, SaveOptions{}) }

// SaveWith is Save with explicit options.
func (r *Result) SaveWith(dir string, opts SaveOptions) error {
	dict := r.corpus.collection().Dict
	if dict == nil {
		return fmt.Errorf("ngramstats: corpus has no dictionary to persist")
	}
	total := r.Len()
	if opts.Shards <= 0 {
		opts.Shards = int((total + (128 << 10) - 1) / (128 << 10))
		if opts.Shards < 1 {
			opts.Shards = 1
		}
		if opts.Shards > 32 {
			opts.Shards = 32
		}
	}
	if opts.TopDepth == 0 {
		opts.TopDepth = defaultTopDepth
	}
	codec := extsort.CodecRaw
	if opts.Compress {
		codec = extsort.CodecFlate
	}

	// Globally sort the result records by encoded key: the reducer
	// emits each partition in its own order, while the index relies on
	// one total bytewise order for shard and block binary search.
	sorter := extsort.NewSorter(extsort.Options{TempDir: opts.TempDir})
	ds := r.run.Result.Dataset()
	for p := 0; p < ds.NumPartitions(); p++ {
		err := ds.Scan(p, func(k, v []byte) error { return sorter.Add(k, v) })
		if err != nil {
			sorter.Discard()
			return fmt.Errorf("ngramstats: save: %w", err)
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return fmt.Errorf("ngramstats: save: %w", err)
	}
	defer it.Close()

	tau := r.opts.MinFrequency
	if tau < 1 {
		tau = 1
	}
	w, err := index.NewWriter(dir, index.WriterOptions{
		Corpus:       r.corpus.Name(),
		Kind:         int(r.run.Result.Kind()),
		Records:      total,
		Shards:       opts.Shards,
		Codec:        codec,
		Jobs:         r.Jobs(),
		Wallclock:    r.Wallclock(),
		Counters:     r.run.Counters.Snapshot(),
		Docs:         int64(len(r.corpus.collection().Docs)),
		MaxLength:    r.opts.MaxLength,
		MinFrequency: tau,
		Selection:    int(r.opts.Selection),
		DictUnranked: !dict.Ranked(),
		Replace:      opts.Replace,
	})
	if err != nil {
		return err
	}
	if err := w.SetDictionary(dict.Save); err != nil {
		w.Abort()
		return err
	}
	for it.Next() {
		if err := w.Append(it.Key(), it.Value()); err != nil {
			w.Abort()
			return err
		}
	}
	if err := it.Err(); err != nil {
		w.Abort()
		return fmt.Errorf("ngramstats: save: %w", err)
	}

	if opts.TopDepth > 0 {
		rv := r.resolver()
		top, err := selectTopRaw(r.eachAggregate, total, opts.TopDepth, rv.topKBetter)
		if err != nil {
			w.Abort()
			return fmt.Errorf("ngramstats: save top records: %w", err)
		}
		for _, e := range top {
			if err := w.AppendTop(encoding.EncodeSeq(e.seq), e.agg.Encode()); err != nil {
				w.Abort()
				return err
			}
		}
	}
	return w.Commit()
}

// IndexOptions tunes OpenIndex. The zero value selects sensible
// defaults.
type IndexOptions struct {
	// CacheBlocks bounds the decoded-block LRU cache in blocks (a
	// block decodes to ~64 KiB). 0 selects 128; negative disables
	// caching. A chain applies the bound per generation.
	CacheBlocks int
	// TempDir is the scratch directory for query-time external sorts
	// (only ordered full scans over a chain view need one; default:
	// system temp).
	TempDir string
}

// OpenIndex opens an index directory written by Save — or an LSM chain
// grown from one by AppendDelta, served as its merged view. The
// returned Index answers NGrams, TopK, Longest, Lookup, and Prefix
// queries byte-identically to the Result it was saved from (for a
// chain: to a full rebuild over all its documents), and is safe for
// any number of concurrent readers. Equivalent to OpenIndexWith with
// zero options.
func OpenIndex(dir string) (*Index, error) { return OpenIndexWith(dir, IndexOptions{}) }

// OpenIndexWith is OpenIndex with explicit options.
func OpenIndexWith(dir string, opts IndexOptions) (*Index, error) {
	var b indexBackend
	if lsm.Exists(dir) {
		v, err := lsm.OpenChain(dir, lsm.Options{CacheBlocks: opts.CacheBlocks, TempDir: opts.TempDir})
		if err != nil {
			return nil, err
		}
		b = v
	} else {
		ix, err := index.Open(dir, index.Options{CacheBlocks: opts.CacheBlocks})
		if err != nil {
			return nil, err
		}
		b = plainBackend{ix}
	}
	kind := core.AggregationKind(b.Kind())
	switch kind {
	case core.AggCount, core.AggTimeSeries, core.AggDocIndex:
	default:
		b.Close()
		return nil, fmt.Errorf("ngramstats: index %s has unknown aggregation kind %d", dir, b.Kind())
	}
	return &Index{b: b, kind: kind}, nil
}

// indexBackend is what a queryable on-disk artifact must provide: a
// plain index directory satisfies it directly, and an LSM chain's
// merged view satisfies it by folding its generations on the fly.
// ScanAll enumerates in ascending encoded-key order; ScanUnordered
// may use any order (the cheap variant for order-independent
// consumers like top-k selection).
type indexBackend interface {
	Records() int64
	Corpus() string
	Kind() int
	Shards() int
	Counters() map[string]int64
	CacheStats() (hits, misses int64)
	ManifestTime() time.Time
	Close() error
	Dictionary() *dictionary.Dictionary
	Get(key []byte) ([]byte, bool, error)
	ScanAll(fn func(key, value []byte) error) error
	ScanUnordered(fn func(key, value []byte) error) error
	ScanPrefix(prefix []byte, fn func(key, value []byte) error) error
	TopRecords(k int) (keys, values [][]byte, ok bool)
}

// plainBackend adapts *index.Index to indexBackend (its scans are
// already ordered, so both scan variants are the same full scan).
type plainBackend struct{ ix *index.Index }

func (p plainBackend) Records() int64                     { return p.ix.Records() }
func (p plainBackend) Corpus() string                     { return p.ix.Corpus() }
func (p plainBackend) Kind() int                          { return p.ix.Kind() }
func (p plainBackend) Shards() int                        { return p.ix.Shards() }
func (p plainBackend) Counters() map[string]int64         { return p.ix.Counters() }
func (p plainBackend) CacheStats() (int64, int64)         { return p.ix.CacheStats() }
func (p plainBackend) ManifestTime() time.Time            { return p.ix.ManifestTime() }
func (p plainBackend) Close() error                       { return p.ix.Close() }
func (p plainBackend) Dictionary() *dictionary.Dictionary { return p.ix.Dictionary() }
func (p plainBackend) Get(key []byte) ([]byte, bool, error) {
	return p.ix.Get(key)
}
func (p plainBackend) ScanAll(fn func(key, value []byte) error) error {
	return p.ix.Scan(nil, nil, fn)
}
func (p plainBackend) ScanUnordered(fn func(key, value []byte) error) error {
	return p.ix.Scan(nil, nil, fn)
}
func (p plainBackend) ScanPrefix(prefix []byte, fn func(key, value []byte) error) error {
	return p.ix.ScanPrefix(prefix, fn)
}
func (p plainBackend) TopRecords(k int) ([][]byte, [][]byte, bool) {
	return p.ix.TopRecords(k)
}

// Index is a read-only handle on a persisted result — a plain index
// directory or an LSM chain's merged view. All query methods are safe
// for concurrent use without locking: the underlying state is
// immutable, shard reads use positioned reads, and the only shared
// mutable structure is the internal block cache.
type Index struct {
	b    indexBackend
	kind core.AggregationKind
}

// resolver returns the shared decoder rendering terms through the
// persisted dictionary.
func (x *Index) resolver() resolver {
	return resolver{term: x.b.Dictionary().Term}
}

// Len returns the number of indexed n-grams. For a chain view this is
// an upper bound: an n-gram present in several generations is counted
// once per generation until the next compaction.
func (x *Index) Len() int64 { return x.b.Records() }

// Corpus returns the name of the corpus the statistics were computed
// over.
func (x *Index) Corpus() string { return x.b.Corpus() }

// Shards returns the number of on-disk shard files.
func (x *Index) Shards() int { return x.b.Shards() }

// Counters returns the counter snapshot of the run that produced the
// index (MAP_OUTPUT_RECORDS, SHUFFLE_BYTES_WRITTEN, …); for a chain,
// the counters summed across its generations' runs.
func (x *Index) Counters() map[string]int64 { return x.b.Counters() }

// CacheStats returns the cumulative hit and miss counts of the
// decoded-block cache, measuring how often queries were served without
// re-reading and re-decoding a shard block.
func (x *Index) CacheStats() (hits, misses int64) { return x.b.CacheStats() }

// ErrIndexClosed is reported by queries issued against a closed Index.
var ErrIndexClosed = index.ErrClosed

// Close releases the index's open files. Close is safe under live
// traffic: queries in flight on other goroutines complete normally and
// the files are closed when the last one drains, while queries started
// after Close fail with ErrIndexClosed. Close is idempotent.
func (x *Index) Close() error { return x.b.Close() }

// ManifestTime returns the modification time of the index manifest
// (CHAIN.json for a chain) observed when the index was opened. A
// serving layer compares it against the on-disk manifest to detect
// that the directory has been rewritten — replaced, appended to, or
// compacted — and a newer generation is available.
func (x *Index) ManifestTime() time.Time { return x.b.ManifestTime() }

// eachAggregate streams every indexed record in ascending encoded-key
// order through the shared iteration seam.
func (x *Index) eachAggregate(fn func(s sequence.Seq, agg core.Aggregate) error) error {
	return x.decodeScan(x.b.ScanAll, fn)
}

// eachAggregateUnordered is eachAggregate without the order guarantee
// — what order-independent consumers (top-k, longest-k selection) use,
// sparing a chain view the external re-sort into canonical order.
func (x *Index) eachAggregateUnordered(fn func(s sequence.Seq, agg core.Aggregate) error) error {
	return x.decodeScan(x.b.ScanUnordered, fn)
}

func (x *Index) decodeScan(scan func(func(k, v []byte) error) error, fn func(s sequence.Seq, agg core.Aggregate) error) error {
	return scan(func(k, v []byte) error {
		s, err := encoding.DecodeSeq(k)
		if err != nil {
			return err
		}
		agg, err := core.DecodeAggregate(x.kind, v)
		if err != nil {
			return err
		}
		return fn(s, agg)
	})
}

// NGrams returns an iterator over every indexed n-gram in ascending
// encoded-key order, decoding one at a time. Error handling matches
// Result.NGrams.
func (x *Index) NGrams() iter.Seq2[NGram, error] {
	rv := x.resolver()
	return func(yield func(NGram, error) bool) {
		err := x.eachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
			if !yield(rv.decode(s, agg), nil) {
				return errStop
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStop) {
			yield(NGram{}, err)
		}
	}
}

// Each calls fn for every indexed n-gram in ascending encoded-key
// order. Returning an error from fn stops iteration.
func (x *Index) Each(fn func(NGram) error) error {
	rv := x.resolver()
	return x.eachAggregate(func(s sequence.Seq, agg core.Aggregate) error {
		return fn(rv.decode(s, agg))
	})
}

// TopK returns the k most frequent n-grams in the same order as
// Result.TopK. Up to the saved precomputation depth (SaveOptions.
// TopDepth) the answer is served from the stored top records without
// scanning; beyond it the index falls back to a full streaming
// selection.
func (x *Index) TopK(k int) ([]NGram, error) {
	if k < 0 {
		k = 0
	}
	if int64(k) > x.Len() {
		k = int(x.Len())
	}
	rv := x.resolver()
	if keys, vals, ok := x.b.TopRecords(k); ok {
		out := make([]NGram, k)
		for i := 0; i < k; i++ {
			s, err := encoding.DecodeSeq(keys[i])
			if err != nil {
				return nil, err
			}
			agg, err := core.DecodeAggregate(x.kind, vals[i])
			if err != nil {
				return nil, err
			}
			out[i] = rv.decode(s, agg)
		}
		return out, nil
	}
	return rv.selectTop(x.eachAggregateUnordered, x.Len(), k, rv.topKBetter)
}

// Longest returns the k longest indexed n-grams in the same order as
// Result.Longest, via a full streaming selection.
func (x *Index) Longest(k int) ([]NGram, error) {
	rv := x.resolver()
	return rv.selectTop(x.eachAggregateUnordered, x.Len(), k, rv.longestBetter)
}

// encodePhrase maps a phrase to its encoded key, or false if any word
// is outside the dictionary (and therefore cannot be indexed).
func (x *Index) encodePhrase(phrase string) ([]byte, bool) {
	words := strings.Fields(phrase)
	if len(words) == 0 {
		return nil, false
	}
	ids := make(sequence.Seq, len(words))
	for i, w := range words {
		id, ok := x.b.Dictionary().ID(strings.ToLower(w))
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	return encoding.EncodeSeq(ids), true
}

// Lookup returns the statistics of the given phrase, if indexed. The
// lookup is a point read: the manifest names the shard, the shard
// footer names the block, and only that block is decoded (or served
// from the cache).
func (x *Index) Lookup(phrase string) (NGram, bool, error) {
	key, ok := x.encodePhrase(phrase)
	if !ok {
		return NGram{}, false, nil
	}
	val, found, err := x.b.Get(key)
	if err != nil || !found {
		return NGram{}, false, err
	}
	s, err := encoding.DecodeSeq(key)
	if err != nil {
		return NGram{}, false, err
	}
	agg, err := core.DecodeAggregate(x.kind, val)
	if err != nil {
		return NGram{}, false, err
	}
	return x.resolver().decode(s, agg), true, nil
}

// Prefix returns up to limit indexed n-grams that extend the given
// phrase (including the phrase itself, if indexed), in ascending
// encoded-key order. limit <= 0 returns all. The scan touches only the
// blocks whose key range intersects the prefix.
func (x *Index) Prefix(phrase string, limit int) ([]NGram, error) {
	key, ok := x.encodePhrase(phrase)
	if !ok {
		return nil, nil
	}
	rv := x.resolver()
	var out []NGram
	err := x.b.ScanPrefix(key, func(k, v []byte) error {
		s, err := encoding.DecodeSeq(k)
		if err != nil {
			return err
		}
		agg, err := core.DecodeAggregate(x.kind, v)
		if err != nil {
			return err
		}
		out = append(out, rv.decode(s, agg))
		if limit > 0 && len(out) >= limit {
			return index.StopScan()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
